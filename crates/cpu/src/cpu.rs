//! The functional executor with taint tracking and pointer-taintedness
//! detection.

use std::fmt;

use ptaint_isa::{
    BranchCond, BranchZCond, DecodeError, DecodedInsn, IAluOp, Instr, MemWidth, MulDivOp, RAluOp,
    Reg, PAGE_SIZE,
};
use ptaint_mem::{MemFault, MemorySystem, WordTaint};
use ptaint_trace::{Event, Loc, SharedObserver, Transfer};

use crate::decode_cache::DecodeCache;
use crate::taint_alu;
use crate::{AlertKind, DetectionPolicy, ExecStats, RegisterFile, SecurityAlert, TaintRules};

/// A programmer annotation (the paper's §5.3 extension): a memory region
/// that must never become tainted. The processor raises a security
/// exception whenever a tainted byte lands inside the region — closing
/// false negatives like Table 4(B)'s authentication-flag overwrite, at the
/// cost of requiring annotations (i.e., giving up full transparency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintWatch {
    /// First byte of the protected region.
    pub addr: u32,
    /// Region length in bytes.
    pub len: u32,
    /// Human-readable label reported in alerts.
    pub label: String,
}

/// What a successfully executed step produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// An ordinary instruction retired.
    Executed,
    /// A `syscall` trapped to the host; `$v0` holds the syscall number and
    /// `$a0..$a3` the arguments. The PC has already advanced, so the host
    /// writes results and resumes with [`Cpu::step`].
    SyscallTrap,
    /// A `break` instruction trapped with its code.
    BreakTrap(u32),
}

/// A condition that stops execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuException {
    /// The pointer-taintedness detector fired — the paper's security
    /// exception. The operating system terminates the process.
    Security(SecurityAlert),
    /// A memory fault (unaligned access or null-page dereference). This is
    /// how undetected attacks typically crash on the unprotected baseline.
    Mem(MemFault),
    /// The PC reached a word that does not decode.
    Decode {
        /// Address of the undecodable word.
        pc: u32,
        /// The decode failure.
        err: DecodeError,
    },
}

impl fmt::Display for CpuException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuException::Security(a) => write!(f, "security exception: {a}"),
            CpuException::Mem(e) => write!(f, "memory fault: {e}"),
            CpuException::Decode { pc, err } => write!(f, "at {pc:#010x}: {err}"),
        }
    }
}

impl std::error::Error for CpuException {}

impl From<MemFault> for CpuException {
    fn from(e: MemFault) -> CpuException {
        CpuException::Mem(e)
    }
}

/// Which execution engine drives [`Cpu::step`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Engine {
    /// Fetch + decode on every step — the legacy interpreter, kept as the
    /// differential-testing oracle for the cached engine.
    Interp,
    /// Predecode straight-line blocks into a per-page decode cache on first
    /// execution and dispatch from the cache thereafter (the default).
    /// Stores into cached text pages invalidate them, so self-modifying
    /// code behaves exactly as under [`Engine::Interp`].
    #[default]
    Cached,
}

/// Default depth of the recently-retired diagnostic ring buffer; override
/// per-CPU with [`Cpu::set_trace_depth`].
pub const DEFAULT_TRACE_DEPTH: usize = 64;

/// Anything that advances the architectural state one instruction at a time
/// around a [`Cpu`] — the functional executor itself, or the pipelined
/// timing model wrapped around one. Execution drivers (the OS run loop, the
/// fault-injection harness) are generic over this so the functional and
/// pipelined paths share one loop.
pub trait Steppable {
    /// Executes one instruction (or pipeline issue).
    ///
    /// # Errors
    ///
    /// Propagates the [`CpuException`] that stopped the step.
    fn step(&mut self) -> Result<StepEvent, CpuException>;

    /// The architectural CPU state (read).
    fn cpu(&self) -> &Cpu;

    /// The architectural CPU state (write) — used by the syscall layer and
    /// injection hooks.
    fn cpu_mut(&mut self) -> &mut Cpu;
}

impl Steppable for Cpu {
    fn step(&mut self) -> Result<StepEvent, CpuException> {
        Cpu::step(self)
    }

    fn cpu(&self) -> &Cpu {
        self
    }

    fn cpu_mut(&mut self) -> &mut Cpu {
        self
    }
}

/// The taint-tracking processor (paper §4).
///
/// Each [`Cpu::step`] fetches, decodes, and executes one instruction,
/// propagating taintedness per Table 1 and applying the detection checks of
/// §4.3 under the configured [`DetectionPolicy`].
///
/// ```
/// use ptaint_cpu::{Cpu, DetectionPolicy, StepEvent};
/// use ptaint_isa::{Instr, Reg, TEXT_BASE};
/// use ptaint_mem::{MemorySystem, WordTaint};
///
/// let mut mem = MemorySystem::flat();
/// // jr $t0 with a tainted target must raise a security exception.
/// mem.write_u32(TEXT_BASE, Instr::JumpReg { rs: Reg::T0 }.encode(), WordTaint::CLEAN)?;
/// let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
/// cpu.set_pc(TEXT_BASE);
/// cpu.regs_mut().set(Reg::T0, 0x61616161, WordTaint::ALL);
/// let err = cpu.step().unwrap_err();
/// assert!(matches!(err, ptaint_cpu::CpuException::Security(_)));
/// # Ok::<(), ptaint_mem::MemFault>(())
/// ```
pub struct Cpu {
    regs: RegisterFile,
    mem: MemorySystem,
    pc: u32,
    policy: DetectionPolicy,
    rules: TaintRules,
    watches: Vec<TaintWatch>,
    stats: ExecStats,
    // Recently-retired ring buffer: grows up to `trace_depth`, then wraps;
    // `recent_head` is the slot holding the oldest entry (and the next one
    // overwritten). A flat ring instead of a `VecDeque` keeps the per-step
    // retire cost to one write.
    recent: Vec<(u32, Instr)>,
    recent_head: usize,
    trace_depth: usize,
    observer: Option<SharedObserver>,
    last_step_tainted: bool,
    engine: Engine,
    dcache: DecodeCache,
    // Set once the decode-cache integrity machinery trips: all proofs are
    // dropped, elision is off, and every check runs in full for the rest of
    // the run (fail safe, not silent).
    degraded: bool,
    // Hot-loop profiler (per-PC histogram + shadow call stack). Boxed so the
    // disabled case costs one `None` branch per retire and nothing in cache
    // footprint; identical across engines because both funnel through
    // `exec`.
    profiler: Option<Box<ptaint_profile::HotProfile>>,
}

/// Instructions between periodic decode-cache integrity sweeps on the
/// cached engine. Each sweep compares every cached page's ProvenClean
/// bitmap against its replica and recomputes one page's slot checksum
/// (round-robin), so the amortized cost is a few dozen word compares.
const INTEGRITY_STRIDE: u64 = 1 << 14;

impl fmt::Debug for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cpu")
            .field("pc", &format_args!("{:#010x}", self.pc))
            .field("policy", &self.policy)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Cpu {
    /// Creates a CPU over `mem` with the given detection policy. The PC
    /// starts at zero; set it with [`Cpu::set_pc`] (the loader uses the
    /// image entry point).
    #[must_use]
    pub fn new(mem: MemorySystem, policy: DetectionPolicy) -> Cpu {
        Cpu {
            regs: RegisterFile::new(),
            mem,
            pc: 0,
            policy,
            rules: TaintRules::PAPER,
            watches: Vec::new(),
            stats: ExecStats::default(),
            recent: Vec::with_capacity(DEFAULT_TRACE_DEPTH),
            recent_head: 0,
            trace_depth: DEFAULT_TRACE_DEPTH,
            observer: None,
            last_step_tainted: false,
            engine: Engine::default(),
            dcache: DecodeCache::new(),
            degraded: false,
            profiler: None,
        }
    }

    /// Selects the execution engine (default: [`Engine::Cached`]). Safe to
    /// switch at any time: the decode cache stays coherent through the
    /// memory system's code-page watches regardless of the active engine.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The active execution engine.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Attaches (or detaches) the structured-event observer. The same
    /// observer is handed to the memory system so cache probes report to it
    /// too. With no observer (the default) every hook is a `None` check.
    pub fn set_observer(&mut self, observer: Option<SharedObserver>) {
        self.mem.set_observer(observer.clone());
        self.observer = observer;
    }

    /// Whether an observer is attached — callers (the OS model) use this to
    /// skip building event labels that would go nowhere.
    #[must_use]
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// Enables the hot-loop profiler (per-PC retirement histogram + shadow
    /// call stack). Collection starts at the next retired instruction; a
    /// fresh profile replaces any previous one.
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(Box::new(ptaint_profile::HotProfile::new()));
    }

    /// Detaches and returns the collected profile (disabling collection).
    pub fn take_profiler(&mut self) -> Option<Box<ptaint_profile::HotProfile>> {
        self.profiler.take()
    }

    /// The live profile, if collection is enabled.
    #[must_use]
    pub fn profiler(&self) -> Option<&ptaint_profile::HotProfile> {
        self.profiler.as_deref()
    }

    /// Forwards an event to the attached observer, if any. The OS model and
    /// loader emit their [`Event::Syscall`] / [`Event::TaintSource`] events
    /// through this.
    pub fn emit_event(&self, event: &Event) {
        if let Some(obs) = &self.observer {
            obs.borrow_mut().on_event(event);
        }
    }

    /// Resizes the recently-retired diagnostic ring (default
    /// [`DEFAULT_TRACE_DEPTH`]). Shrinking drops the oldest entries.
    pub fn set_trace_depth(&mut self, depth: usize) {
        self.trace_depth = depth.max(1);
        // Re-linearize the ring at the new depth so pushes keep appending
        // (or wrapping) correctly.
        let mut ordered = self.recent_trace();
        if ordered.len() > self.trace_depth {
            ordered.drain(..ordered.len() - self.trace_depth);
        }
        self.recent = ordered;
        self.recent_head = 0;
    }

    /// Current depth of the recently-retired ring.
    #[must_use]
    pub fn trace_depth(&self) -> usize {
        self.trace_depth
    }

    /// Replaces the active taint-propagation rule set (default:
    /// [`TaintRules::PAPER`]). Used by the ablation experiments.
    pub fn set_taint_rules(&mut self, rules: TaintRules) {
        self.rules = rules;
    }

    /// The active taint-propagation rules.
    #[must_use]
    pub fn taint_rules(&self) -> TaintRules {
        self.rules
    }

    /// Registers a programmer annotation (§5.3 extension): raise a security
    /// exception as soon as any byte of `[addr, addr+len)` becomes tainted.
    pub fn add_taint_watch(&mut self, addr: u32, len: u32, label: impl Into<String>) {
        self.watches.push(TaintWatch {
            addr,
            len,
            label: label.into(),
        });
    }

    /// The registered annotations.
    #[must_use]
    pub fn taint_watches(&self) -> &[TaintWatch] {
        &self.watches
    }

    /// Scans all annotated regions for tainted bytes; returns an alert for
    /// the first violation. `instr`/`pc` describe the operation being
    /// blamed (the store that landed the taint, or the syscall whose buffer
    /// copy did).
    pub fn scan_taint_watches(&mut self, pc: u32, instr: Instr) -> Option<SecurityAlert> {
        for watch in &self.watches {
            let Ok(taint) = self.mem.read_taint(watch.addr, watch.len) else {
                continue;
            };
            if let Some(offset) = taint.iter().position(|&t| t) {
                return Some(SecurityAlert {
                    pc,
                    instr,
                    kind: AlertKind::AnnotationTainted,
                    pointer_reg: ptaint_isa::Reg::ZERO,
                    pointer: watch.addr + offset as u32,
                    taint: ptaint_mem::WordTaint::ALL,
                });
            }
        }
        None
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// The active detection policy.
    #[must_use]
    pub fn policy(&self) -> DetectionPolicy {
        self.policy
    }

    /// Register file (read).
    #[must_use]
    pub fn regs(&self) -> &RegisterFile {
        &self.regs
    }

    /// Register file (write) — used by the loader and the syscall layer.
    pub fn regs_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// Memory system (read).
    #[must_use]
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Memory system (write) — used by the loader and the syscall layer.
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Execution statistics so far.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Counts one applied fault from the injection harness (I/O degradation
    /// or state corruption) in [`ExecStats::injected_faults`].
    pub fn note_injected_fault(&mut self) {
        self.stats.injected_faults += 1;
    }

    /// The most recently retired instructions (oldest first), for
    /// diagnostics.
    #[must_use]
    pub fn recent_trace(&self) -> Vec<(u32, Instr)> {
        let (wrapped, oldest) = self.recent.split_at(self.recent_head);
        oldest.iter().chain(wrapped).copied().collect()
    }

    #[inline]
    fn push_trace(&mut self, pc: u32, instr: Instr) {
        if self.recent.len() < self.trace_depth {
            self.recent.push((pc, instr));
        } else {
            self.recent[self.recent_head] = (pc, instr);
            self.recent_head += 1;
            if self.recent_head == self.recent.len() {
                self.recent_head = 0;
            }
        }
    }

    /// Emits a [`Event::TaintPropagate`] when taint is actually in motion:
    /// the destination ends up tainted, or a tainted source got overwritten
    /// clean (provenance needs the clearing too). No-op without an observer.
    #[allow(clippy::too_many_arguments)] // mirrors the Transfer field list
    fn emit_transfer(
        &self,
        pc: u32,
        instr: Instr,
        rule: &'static str,
        dst: Loc,
        srcs: [Option<Loc>; 2],
        dst_taint: WordTaint,
        src_taints: &[WordTaint],
    ) {
        if self.observer.is_none() {
            return;
        }
        if !dst_taint.any() && !src_taints.iter().any(|t| t.any()) {
            return;
        }
        self.emit_event(&Event::TaintPropagate(Transfer {
            pc,
            instr,
            rule,
            dst,
            srcs,
            taint_bits: dst_taint.bits(),
        }));
    }

    /// Builds the load/store detector's alert (paper §4.3: OR the taint bits
    /// of the address word; placed after EX/MEM).
    fn check_data_pointer(&mut self, pc: u32, instr: Instr, base: Reg) -> Result<(), CpuException> {
        let (value, taint) = self.regs.get(base);
        if taint.any() {
            self.stats.tainted_pointer_dereferences += 1;
            let flagged = self.policy.checks_data_pointers();
            self.emit_event(&Event::PointerCheck {
                pc,
                instr,
                reg: base,
                value,
                taint_bits: taint.bits(),
                flagged,
            });
            if flagged {
                self.emit_alert_event(pc, instr, AlertKind::DataPointer, base, value, taint);
                return Err(CpuException::Security(SecurityAlert {
                    pc,
                    instr,
                    kind: AlertKind::DataPointer,
                    pointer_reg: base,
                    pointer: value,
                    taint,
                }));
            }
        }
        Ok(())
    }

    /// Builds the jump detector's alert (paper §4.3: OR the taint bits of the
    /// target register; placed after ID/EX).
    fn check_jump_pointer(
        &mut self,
        pc: u32,
        instr: Instr,
        target: Reg,
    ) -> Result<(), CpuException> {
        let (value, taint) = self.regs.get(target);
        if taint.any() {
            self.stats.tainted_pointer_dereferences += 1;
            let flagged = self.policy.checks_jump_pointers();
            self.emit_event(&Event::PointerCheck {
                pc,
                instr,
                reg: target,
                value,
                taint_bits: taint.bits(),
                flagged,
            });
            if flagged {
                self.emit_alert_event(pc, instr, AlertKind::JumpPointer, target, value, taint);
                return Err(CpuException::Security(SecurityAlert {
                    pc,
                    instr,
                    kind: AlertKind::JumpPointer,
                    pointer_reg: target,
                    pointer: value,
                    taint,
                }));
            }
        }
        Ok(())
    }

    fn emit_alert_event(
        &self,
        pc: u32,
        instr: Instr,
        kind: AlertKind,
        reg: Reg,
        value: u32,
        taint: WordTaint,
    ) {
        self.emit_event(&Event::Alert {
            pc,
            instr,
            kind: kind.name(),
            policy: self.policy.name(),
            reg,
            value,
            taint_bits: taint.bits(),
        });
    }

    /// Emits the in-place untainting a compare applies to an operand
    /// (Table 1's compare rule) so provenance sees the taint disappear.
    fn emit_compare_untaint(&self, pc: u32, instr: Instr, reg: Reg, old_taint: WordTaint) {
        if old_taint.any() {
            self.emit_transfer(
                pc,
                instr,
                "compare-untaint",
                Loc::Reg(reg),
                [Some(Loc::Reg(reg)), None],
                WordTaint::CLEAN,
                &[old_taint],
            );
        }
    }

    fn note_tainted_operands(&mut self, taints: &[WordTaint]) {
        if taints.iter().any(|t| t.any()) {
            self.stats.tainted_operand_instructions += 1;
            self.last_step_tainted = true;
        }
    }

    /// Installs the static analyzer's proven-clean set: instruction
    /// addresses whose pointer-taintedness check can never fire, which the
    /// cached engine then skips ([`ExecStats::elided_checks`] counts them).
    /// Soundness is the analyzer's contract; the machine layer only
    /// installs a set produced for the exact image, policy, and taint
    /// rules being run. Any store into watched text (self-modifying code)
    /// drops the whole set for the rest of the run.
    pub fn install_proven_checks(&mut self, pcs: impl IntoIterator<Item = u32>) {
        self.dcache.install_proven(pcs);
    }

    /// Whether a proven-clean set is installed and still valid (it is
    /// dropped wholesale on the first self-modifying-code invalidation).
    #[must_use]
    pub fn has_proven_checks(&self) -> bool {
        self.dcache.has_proven()
    }

    /// Whether the decode-cache integrity machinery has tripped: all
    /// proofs dropped, elision disabled, every check running in full for
    /// the rest of the run.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Enters degraded mode: drops every cached page and every proof,
    /// bumps [`ExecStats::integrity_failures`], emits a
    /// [`Event::DegradedMode`] trace event, and keeps executing with all
    /// checks in force. Corrupted elision state fails safe, never silent.
    fn degrade(&mut self, reason: &str) {
        self.stats.integrity_failures += 1;
        self.degraded = true;
        self.dcache.degrade();
        if self.observer.is_some() {
            self.emit_event(&Event::DegradedMode {
                reason: reason.to_owned(),
            });
        }
    }

    /// Fault-injection hook: flips one bit in the *primary* ProvenClean
    /// bitmap of a cached decode page, bypassing the replica — modelling a
    /// hardware fault in the elision machinery. Returns a description, or
    /// `None` when nothing is cached yet.
    pub fn corrupt_proven_bit(&mut self, pick: u64, bit: u64) -> Option<String> {
        self.dcache.corrupt_proven_bit(pick, bit)
    }

    /// Fault-injection hook: flips one bit in the pre-extended immediate
    /// of a filled decode-cache slot, bypassing the page checksum. Returns
    /// a description, or `None` when nothing is cached yet.
    pub fn corrupt_decode_slot(&mut self, pick: u64, bit: u64) -> Option<String> {
        self.dcache.corrupt_decode_slot(pick, bit)
    }

    /// Forks the processor: a new [`Cpu`] with identical architectural
    /// state whose memory shares pages copy-on-write with this one
    /// ([`MemorySystem::fork`]). Writes on either side never alias the
    /// other.
    ///
    /// The decode cache is **rebuilt on demand** rather than shared: the
    /// fork starts with no decoded pages and a private copy of the
    /// analyzer's proven-clean set, exactly the state a fresh boot has
    /// after [`Cpu::install_proven_checks`]. Sharing decoded pages would
    /// couple the proof machinery across timelines — a self-modifying
    /// store in one fork must never revoke (or preserve) proofs in
    /// another. Forked from a pre-execution snapshot, the child is
    /// bit-identical to a fresh boot by construction, decode-cache
    /// counters included.
    ///
    /// The observer and profiler are deliberately *not* inherited — both
    /// are single-timeline sinks; attach fresh ones to the fork if needed.
    #[must_use]
    pub fn fork(&self) -> Cpu {
        Cpu {
            regs: self.regs.clone(),
            mem: self.mem.fork(),
            pc: self.pc,
            policy: self.policy,
            rules: self.rules,
            watches: self.watches.clone(),
            stats: self.stats,
            recent: self.recent.clone(),
            recent_head: self.recent_head,
            trace_depth: self.trace_depth,
            observer: None,
            last_step_tainted: self.last_step_tainted,
            engine: self.engine,
            dcache: self.dcache.fork_rebuild(),
            degraded: self.degraded,
            profiler: None,
        }
    }

    /// Bookkeeping for a statically elided pointer check. The analyzer
    /// guarantees the checked word is clean here, so skipping the check
    /// cannot change architectural behaviour — asserted in debug builds
    /// and by the machine-level elision differential tests.
    #[inline]
    fn elide_check(&mut self, pc: u32, taint: WordTaint) {
        debug_assert!(
            !taint.any(),
            "elided a pointer check on a tainted word at {pc:#010x}"
        );
        self.stats.elided_checks += 1;
        if self.observer.is_some() {
            self.emit_event(&Event::CheckElided { pc });
        }
    }

    /// Executes one instruction under the active [`Engine`].
    ///
    /// The interpreter fetches and decodes every step. The cached engine
    /// first drains pending code-page invalidations, then dispatches from
    /// the decode cache; on a miss it falls back to the interpreter's
    /// fetch+decode (reproducing its exact faults), predecodes the
    /// straight-line block, and registers a code-page watch so later
    /// stores into the page invalidate it.
    ///
    /// # Errors
    ///
    /// * [`CpuException::Security`] — a pointer-taintedness detector fired;
    /// * [`CpuException::Mem`] — unaligned or null-page access (fetch or
    ///   data);
    /// * [`CpuException::Decode`] — the PC reached an undecodable word.
    pub fn step(&mut self) -> Result<StepEvent, CpuException> {
        let pc = self.pc;
        if self.engine == Engine::Cached {
            if self.mem.has_dirty_code_pages() {
                self.invalidate_dirty_pages();
            }
            // Periodic integrity sweep: ProvenClean bitmaps (full, against
            // the replica) plus one page's slot checksum per sweep. On a
            // mismatch the cache degrades — proofs dropped, pages refilled
            // from authoritative memory — and execution continues with
            // every check in force.
            if self.stats.instructions & (INTEGRITY_STRIDE - 1) == 0 && self.stats.instructions != 0
            {
                if let Some(reason) = self.dcache.verify_sweep() {
                    self.degrade(&reason);
                }
            }
            if let Some((d, proven)) = self.dcache.lookup(pc) {
                if let Some(reason) = self.dcache.take_compromised() {
                    // A proven-bit replica mismatch at lookup: degrade now
                    // (dropping this page with the rest) and fall through
                    // to the authoritative fetch+decode path.
                    self.degrade(&reason);
                } else {
                    self.stats.decode_cache_hits += 1;
                    if self.observer.is_some() {
                        self.emit_event(&Event::DecodeCache {
                            page: pc / PAGE_SIZE,
                            kind: "hit",
                        });
                    }
                    return self.exec(pc, d, proven);
                }
            }
        }
        // Authoritative path: always for the interpreter, on a miss for the
        // cached engine. Checks are never elided here — elision bits live in
        // the decode cache, so the interpreter stays the unelided oracle.
        let word = self.mem.fetch_u32(pc)?;
        let d = DecodedInsn::predecode(pc, word).map_err(|err| CpuException::Decode { pc, err })?;
        if self.engine == Engine::Cached {
            self.stats.decode_cache_misses += 1;
            self.emit_event(&Event::DecodeCache {
                page: pc / PAGE_SIZE,
                kind: "miss",
            });
            self.dcache.fill_block(pc, self.mem.memory());
            self.mem.watch_code_page(pc / PAGE_SIZE);
        }
        self.exec(pc, d, false)
    }

    /// Invalidates every decode-cache page the memory system reports as
    /// written since the last drain.
    fn invalidate_dirty_pages(&mut self) {
        for page in self.mem.take_dirty_code_pages() {
            if self.dcache.invalidate(page) {
                self.stats.decode_cache_invalidations += 1;
                self.emit_event(&Event::DecodeCache {
                    page,
                    kind: "invalidate",
                });
            }
        }
    }

    /// The execute stage shared by both engines: applies `d` (predecoded at
    /// `pc`) to the architectural and taint state. With `elide` set (cached
    /// engine, statically proven site) the pointer-taintedness check is
    /// skipped; taint *propagation* always runs in full — elision only
    /// removes the detector probe, never the Table 1 dataflow.
    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, pc: u32, d: DecodedInsn, elide: bool) -> Result<StepEvent, CpuException> {
        let instr = d.instr;
        let mut next_pc = pc.wrapping_add(4);
        let mut event = StepEvent::Executed;
        self.last_step_tainted = false;

        match instr {
            Instr::RAlu { op, rd, rs, rt } => {
                let (a, ta) = self.regs.get(rs);
                let (b, tb) = self.regs.get(rt);
                self.note_tainted_operands(&[ta, tb]);
                let value = match op {
                    RAluOp::Add | RAluOp::Addu => a.wrapping_add(b),
                    RAluOp::Sub | RAluOp::Subu => a.wrapping_sub(b),
                    RAluOp::And => a & b,
                    RAluOp::Or => a | b,
                    RAluOp::Xor => a ^ b,
                    RAluOp::Nor => !(a | b),
                    RAluOp::Slt => u32::from((a as i32) < (b as i32)),
                    RAluOp::Sltu => u32::from(a < b),
                };
                let taint = taint_alu::ralu_result_with(self.rules, op, a, ta, b, tb, rs == rt);
                if op.is_compare() && self.rules.compare_untaints && (ta.any() || tb.any()) {
                    // Table 1: compare untaints its operands in place.
                    self.regs.set_taint(rs, taint_alu::compare_operand_taint());
                    self.regs.set_taint(rt, taint_alu::compare_operand_taint());
                    self.emit_compare_untaint(pc, instr, rs, ta);
                    self.emit_compare_untaint(pc, instr, rt, tb);
                }
                self.regs.set(rd, value, taint);
                self.emit_transfer(
                    pc,
                    instr,
                    taint_alu::ralu_rule(self.rules, op, rs == rt),
                    Loc::Reg(rd),
                    [Some(Loc::Reg(rs)), Some(Loc::Reg(rt))],
                    taint,
                    &[ta, tb],
                );
            }
            Instr::IAlu { op, rt, rs, .. } => {
                let (a, ta) = self.regs.get(rs);
                self.note_tainted_operands(&[ta]);
                // Sign/zero extension was done at predecode time.
                let ext: u32 = d.imm;
                let value = match op {
                    IAluOp::Addi | IAluOp::Addiu => a.wrapping_add(ext),
                    IAluOp::Slti => u32::from((a as i32) < (ext as i32)),
                    IAluOp::Sltiu => u32::from(a < ext),
                    IAluOp::Andi => a & ext,
                    IAluOp::Ori => a | ext,
                    IAluOp::Xori => a ^ ext,
                };
                let taint = taint_alu::ialu_result_with(self.rules, op, a, ta, ext);
                if op.is_compare() && self.rules.compare_untaints && ta.any() {
                    self.regs.set_taint(rs, taint_alu::compare_operand_taint());
                    self.emit_compare_untaint(pc, instr, rs, ta);
                }
                self.regs.set(rt, value, taint);
                self.emit_transfer(
                    pc,
                    instr,
                    taint_alu::ialu_rule(self.rules, op),
                    Loc::Reg(rt),
                    [Some(Loc::Reg(rs)), None],
                    taint,
                    &[ta],
                );
            }
            Instr::Shift { op, rd, rt, shamt } => {
                let (v, tv) = self.regs.get(rt);
                self.note_tainted_operands(&[tv]);
                let value = shift_value(op, v, u32::from(shamt));
                let taint = taint_alu::shift_result_with(self.rules, op, tv, WordTaint::CLEAN);
                self.regs.set(rd, value, taint);
                self.emit_transfer(
                    pc,
                    instr,
                    taint_alu::shift_rule(self.rules, op),
                    Loc::Reg(rd),
                    [Some(Loc::Reg(rt)), None],
                    taint,
                    &[tv],
                );
            }
            Instr::ShiftV { op, rd, rt, rs } => {
                let (v, tv) = self.regs.get(rt);
                let (amt, tamt) = self.regs.get(rs);
                self.note_tainted_operands(&[tv, tamt]);
                let value = shift_value(op, v, amt & 0x1f);
                let taint = taint_alu::shift_result_with(self.rules, op, tv, tamt);
                self.regs.set(rd, value, taint);
                self.emit_transfer(
                    pc,
                    instr,
                    taint_alu::shift_rule(self.rules, op),
                    Loc::Reg(rd),
                    [Some(Loc::Reg(rt)), Some(Loc::Reg(rs))],
                    taint,
                    &[tv, tamt],
                );
            }
            Instr::Lui { rt, .. } => {
                // A program constant, pre-shifted at predecode time:
                // untainted (paper §4.2).
                self.regs.set(rt, d.imm, WordTaint::CLEAN);
            }
            Instr::MulDiv { op, rs, rt } => {
                let (a, ta) = self.regs.get(rs);
                let (b, tb) = self.regs.get(rt);
                self.note_tainted_operands(&[ta, tb]);
                let taint = taint_alu::generic(ta, tb);
                match op {
                    MulDivOp::Mult => {
                        let prod = i64::from(a as i32).wrapping_mul(i64::from(b as i32)) as u64;
                        self.regs.set_lo(prod as u32, taint);
                        self.regs.set_hi((prod >> 32) as u32, taint);
                    }
                    MulDivOp::Multu => {
                        let prod = u64::from(a).wrapping_mul(u64::from(b));
                        self.regs.set_lo(prod as u32, taint);
                        self.regs.set_hi((prod >> 32) as u32, taint);
                    }
                    MulDivOp::Div => {
                        // Division by zero is architecturally undefined on
                        // MIPS; we pick the common emulator convention.
                        if b == 0 {
                            self.regs.set_lo(u32::MAX, taint);
                            self.regs.set_hi(a, taint);
                        } else {
                            let (a, b) = (a as i32, b as i32);
                            self.regs.set_lo(a.wrapping_div(b) as u32, taint);
                            self.regs.set_hi(a.wrapping_rem(b) as u32, taint);
                        }
                    }
                    MulDivOp::Divu => match (a.checked_div(b), a.checked_rem(b)) {
                        (Some(q), Some(r)) => {
                            self.regs.set_lo(q, taint);
                            self.regs.set_hi(r, taint);
                        }
                        _ => {
                            self.regs.set_lo(u32::MAX, taint);
                            self.regs.set_hi(a, taint);
                        }
                    },
                }
                self.emit_transfer(
                    pc,
                    instr,
                    "generic",
                    Loc::HiLo,
                    [Some(Loc::Reg(rs)), Some(Loc::Reg(rt))],
                    taint,
                    &[ta, tb],
                );
            }
            Instr::MoveFromHi { rd } => {
                let (v, t) = self.regs.hi();
                self.regs.set(rd, v, t);
                self.emit_transfer(
                    pc,
                    instr,
                    "move",
                    Loc::Reg(rd),
                    [Some(Loc::HiLo), None],
                    t,
                    &[t],
                );
            }
            Instr::MoveFromLo { rd } => {
                let (v, t) = self.regs.lo();
                self.regs.set(rd, v, t);
                self.emit_transfer(
                    pc,
                    instr,
                    "move",
                    Loc::Reg(rd),
                    [Some(Loc::HiLo), None],
                    t,
                    &[t],
                );
            }
            Instr::MoveToHi { rs } => {
                let (v, t) = self.regs.get(rs);
                self.regs.set_hi(v, t);
                self.emit_transfer(
                    pc,
                    instr,
                    "move",
                    Loc::HiLo,
                    [Some(Loc::Reg(rs)), None],
                    t,
                    &[t],
                );
            }
            Instr::MoveToLo { rs } => {
                let (v, t) = self.regs.get(rs);
                self.regs.set_lo(v, t);
                self.emit_transfer(
                    pc,
                    instr,
                    "move",
                    Loc::HiLo,
                    [Some(Loc::Reg(rs)), None],
                    t,
                    &[t],
                );
            }
            Instr::Load {
                width,
                signed,
                rt,
                base,
                ..
            } => {
                self.stats.loads += 1;
                let (bv, bt) = self.regs.get(base);
                self.note_tainted_operands(&[bt]);
                if elide {
                    self.elide_check(pc, bt);
                } else {
                    self.check_data_pointer(pc, instr, base)?;
                }
                let addr = bv.wrapping_add(d.imm);
                let (value, taint) = match width {
                    MemWidth::Byte => {
                        let (b, t) = self.mem.read_u8(addr)?;
                        let v = if signed {
                            b as i8 as i32 as u32
                        } else {
                            u32::from(b)
                        };
                        (v, WordTaint::CLEAN.with_byte(0, t))
                    }
                    MemWidth::Half => {
                        let (h, t) = self.mem.read_u16(addr)?;
                        let v = if signed {
                            h as i16 as i32 as u32
                        } else {
                            u32::from(h)
                        };
                        (v, t)
                    }
                    MemWidth::Word => self.mem.read_u32(addr)?,
                };
                let result_taint = taint_alu::load_result(width, signed, taint);
                self.regs.set(rt, value, result_taint);
                self.emit_transfer(
                    pc,
                    instr,
                    "load",
                    Loc::Reg(rt),
                    [Some(Loc::Mem(addr)), None],
                    result_taint,
                    &[taint],
                );
            }
            Instr::Store {
                width, rt, base, ..
            } => {
                self.stats.stores += 1;
                let (bv, bt) = self.regs.get(base);
                let (v, tv) = self.regs.get(rt);
                self.note_tainted_operands(&[bt, tv]);
                if elide {
                    self.elide_check(pc, bt);
                } else {
                    self.check_data_pointer(pc, instr, base)?;
                }
                let addr = bv.wrapping_add(d.imm);
                let stored_taint = match width {
                    MemWidth::Byte => {
                        self.mem.write_u8(addr, v as u8, tv.byte(0))?;
                        WordTaint::from_bits(tv.bits() & 1)
                    }
                    MemWidth::Half => {
                        self.mem.write_u16(addr, v as u16, tv.low_half())?;
                        tv.low_half()
                    }
                    MemWidth::Word => {
                        self.mem.write_u32(addr, v, tv)?;
                        tv
                    }
                };
                self.emit_transfer(
                    pc,
                    instr,
                    "store",
                    Loc::Mem(addr),
                    [Some(Loc::Reg(rt)), None],
                    stored_taint,
                    &[tv],
                );
                // §5.3 extension: annotated regions must never become
                // tainted. Only stores of tainted data can violate this.
                if tv.any() && !self.watches.is_empty() {
                    if let Some(alert) = self.scan_taint_watches(pc, instr) {
                        return Err(CpuException::Security(alert));
                    }
                }
            }
            Instr::Branch { cond, rs, rt, .. } => {
                self.stats.branches += 1;
                let (a, ta) = self.regs.get(rs);
                let (b, tb) = self.regs.get(rt);
                self.note_tainted_operands(&[ta, tb]);
                // Branches are compare instructions: untaint the operands.
                // (Clean operands need no write — the common case.)
                if self.rules.compare_untaints && (ta.any() || tb.any()) {
                    self.regs.set_taint(rs, taint_alu::compare_operand_taint());
                    self.regs.set_taint(rt, taint_alu::compare_operand_taint());
                    self.emit_compare_untaint(pc, instr, rs, ta);
                    self.emit_compare_untaint(pc, instr, rt, tb);
                }
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                };
                if taken {
                    // Target computed at predecode time.
                    next_pc = d.target;
                }
            }
            Instr::BranchZ { cond, rs, .. } => {
                self.stats.branches += 1;
                let (a, ta) = self.regs.get(rs);
                self.note_tainted_operands(&[ta]);
                if self.rules.compare_untaints && ta.any() {
                    self.regs.set_taint(rs, taint_alu::compare_operand_taint());
                    self.emit_compare_untaint(pc, instr, rs, ta);
                }
                let a = a as i32;
                let taken = match cond {
                    BranchZCond::Lez => a <= 0,
                    BranchZCond::Gtz => a > 0,
                    BranchZCond::Ltz => a < 0,
                    BranchZCond::Gez => a >= 0,
                };
                if taken {
                    next_pc = d.target;
                }
            }
            Instr::Jump { link, .. } => {
                if link {
                    self.regs.set(Reg::RA, pc.wrapping_add(4), WordTaint::CLEAN);
                }
                next_pc = d.target;
            }
            Instr::JumpReg { rs } => {
                self.stats.register_jumps += 1;
                let (_, t) = self.regs.get(rs);
                self.note_tainted_operands(&[t]);
                if elide {
                    self.elide_check(pc, t);
                } else {
                    self.check_jump_pointer(pc, instr, rs)?;
                }
                next_pc = self.regs.value(rs);
            }
            Instr::JumpAndLinkReg { rd, rs } => {
                self.stats.register_jumps += 1;
                let (_, t) = self.regs.get(rs);
                self.note_tainted_operands(&[t]);
                if elide {
                    self.elide_check(pc, t);
                } else {
                    self.check_jump_pointer(pc, instr, rs)?;
                }
                next_pc = self.regs.value(rs);
                self.regs.set(rd, pc.wrapping_add(4), WordTaint::CLEAN);
            }
            Instr::Syscall => {
                self.stats.syscalls += 1;
                event = StepEvent::SyscallTrap;
            }
            Instr::Break { code } => {
                event = StepEvent::BreakTrap(code);
            }
        }

        self.stats.instructions += 1;
        self.push_trace(pc, instr);
        if let Some(profiler) = &mut self.profiler {
            profiler.on_retire(pc);
            profiler.on_control(&instr, next_pc);
        }
        self.pc = next_pc;
        if self.observer.is_some() {
            self.emit_event(&Event::Retire {
                pc,
                instr,
                tainted: self.last_step_tainted,
            });
        }
        Ok(event)
    }
}

fn shift_value(op: ptaint_isa::ShiftOp, v: u32, amount: u32) -> u32 {
    use ptaint_isa::ShiftOp;
    match op {
        ShiftOp::Sll => v << amount,
        ShiftOp::Srl => v >> amount,
        ShiftOp::Sra => ((v as i32) >> amount) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_asm::assemble;
    use ptaint_isa::TEXT_BASE;

    /// Assembles `src`, loads it flat, returns a CPU at its entry.
    fn boot(src: &str, policy: DetectionPolicy) -> Cpu {
        let image = assemble(src).expect("test program must assemble");
        let mut mem = MemorySystem::flat();
        for (i, &w) in image.text.iter().enumerate() {
            mem.write_u32(image.text_base + 4 * i as u32, w, WordTaint::CLEAN)
                .unwrap();
        }
        mem.write_bytes(image.data_base, &image.data, false)
            .unwrap();
        let mut cpu = Cpu::new(mem, policy);
        cpu.set_pc(image.entry);
        cpu
    }

    /// Steps until a break trap, a limit, or an exception.
    fn run(cpu: &mut Cpu, limit: u64) -> Result<u32, CpuException> {
        for _ in 0..limit {
            match cpu.step()? {
                StepEvent::BreakTrap(code) => return Ok(code),
                StepEvent::SyscallTrap | StepEvent::Executed => {}
            }
        }
        panic!("program did not finish within {limit} steps");
    }

    #[test]
    fn arithmetic_executes() {
        let mut cpu = boot(
            "main: li $t0, 6
                   li $t1, 7
                   addu $t2, $t0, $t1
                   mult $t0, $t1
                   mflo $t3
                   break 0",
            DetectionPolicy::PointerTaintedness,
        );
        run(&mut cpu, 100).unwrap();
        assert_eq!(cpu.regs().value(Reg::T2), 13);
        assert_eq!(cpu.regs().value(Reg::T3), 42);
    }

    #[test]
    fn loops_and_branches() {
        // sum 1..=10
        let mut cpu = boot(
            "main:  li $t0, 0      # i
                    li $t1, 0      # sum
loop:               addiu $t0, $t0, 1
                    addu $t1, $t1, $t0
                    li $t2, 10
                    bne $t0, $t2, loop
                    break 0",
            DetectionPolicy::PointerTaintedness,
        );
        run(&mut cpu, 1000).unwrap();
        assert_eq!(cpu.regs().value(Reg::T1), 55);
        assert!(cpu.stats().branches >= 10);
    }

    #[test]
    fn memory_load_store_roundtrip() {
        let mut cpu = boot(
            ".data
buf:    .space 16
        .text
main:   la $t0, buf
        li $t1, 0x12345678
        sw $t1, 4($t0)
        lw $t2, 4($t0)
        lbu $t3, 4($t0)
        lb  $t4, 7($t0)
        break 0",
            DetectionPolicy::PointerTaintedness,
        );
        run(&mut cpu, 100).unwrap();
        assert_eq!(cpu.regs().value(Reg::T2), 0x12345678);
        assert_eq!(cpu.regs().value(Reg::T3), 0x78);
        assert_eq!(cpu.regs().value(Reg::T4), 0x12);
    }

    #[test]
    fn function_call_and_return() {
        let mut cpu = boot(
            "main:   jal f
                    break 0
f:      li $v0, 99
        jr $ra",
            DetectionPolicy::PointerTaintedness,
        );
        run(&mut cpu, 100).unwrap();
        assert_eq!(cpu.regs().value(Reg::V0), 99);
        assert_eq!(cpu.stats().register_jumps, 1);
    }

    #[test]
    fn taint_propagates_through_alu_chain() {
        let mut cpu = boot(
            "main: addu $t1, $t0, $zero    # copy tainted t0
                   addiu $t2, $t1, 4
                   sll $t3, $t2, 2
                   break 0",
            DetectionPolicy::PointerTaintedness,
        );
        cpu.regs_mut().set(Reg::T0, 0x100, WordTaint::ALL);
        run(&mut cpu, 100).unwrap();
        assert_eq!(cpu.regs().taint(Reg::T1), WordTaint::ALL);
        assert_eq!(cpu.regs().taint(Reg::T2), WordTaint::ALL);
        assert_eq!(cpu.regs().taint(Reg::T3), WordTaint::ALL);
        assert!(cpu.stats().tainted_operand_instructions >= 3);
    }

    #[test]
    fn tainted_load_address_raises_alert() {
        let mut cpu = boot(
            "main: lw $t1, 0($t0)\nbreak 0",
            DetectionPolicy::PointerTaintedness,
        );
        cpu.regs_mut().set(Reg::T0, 0x6161_6161, WordTaint::ALL);
        let err = run(&mut cpu, 10).unwrap_err();
        match err {
            CpuException::Security(alert) => {
                assert_eq!(alert.kind, AlertKind::DataPointer);
                assert_eq!(alert.pointer, 0x6161_6161);
                assert_eq!(alert.pc, TEXT_BASE);
                assert_eq!(alert.instr.to_string(), "lw $9,0($8)");
            }
            other => panic!("expected security exception, got {other:?}"),
        }
    }

    #[test]
    fn tainted_store_address_raises_alert() {
        let mut cpu = boot(
            "main: sw $t1, 0($t0)\nbreak 0",
            DetectionPolicy::PointerTaintedness,
        );
        cpu.regs_mut()
            .set(Reg::T0, 0x1002_bc20, WordTaint::from_bits(0b0001));
        let err = run(&mut cpu, 10).unwrap_err();
        assert!(matches!(
            err,
            CpuException::Security(SecurityAlert {
                kind: AlertKind::DataPointer,
                pointer: 0x1002_bc20,
                ..
            })
        ));
    }

    #[test]
    fn partially_tainted_pointer_still_detected() {
        // Even a single tainted byte in the address word trips the OR-gate.
        let mut cpu = boot(
            "main: lb $t1, 0($t0)\nbreak 0",
            DetectionPolicy::PointerTaintedness,
        );
        cpu.regs_mut()
            .set(Reg::T0, 0x1000_0000, WordTaint::from_bits(0b0100));
        assert!(matches!(run(&mut cpu, 10), Err(CpuException::Security(_))));
    }

    #[test]
    fn tainted_jump_target_raises_alert_under_both_policies() {
        for policy in [
            DetectionPolicy::PointerTaintedness,
            DetectionPolicy::ControlOnly,
        ] {
            let mut cpu = boot("main: jr $t0\nbreak 0", policy);
            cpu.regs_mut().set(Reg::T0, 0x6161_6161, WordTaint::ALL);
            let err = run(&mut cpu, 10).unwrap_err();
            assert!(
                matches!(
                    err,
                    CpuException::Security(SecurityAlert {
                        kind: AlertKind::JumpPointer,
                        ..
                    })
                ),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn control_only_policy_misses_data_pointer_attacks() {
        let mut cpu = boot(
            ".data
scratch: .space 64
        .text
main:   sw $t1, 0($t0)
        break 0",
            DetectionPolicy::ControlOnly,
        );
        cpu.regs_mut()
            .set(Reg::T0, ptaint_isa::DATA_BASE, WordTaint::ALL);
        // No alert: the store silently lands.
        run(&mut cpu, 10).unwrap();
        assert_eq!(cpu.stats().tainted_pointer_dereferences, 1);
    }

    #[test]
    fn off_policy_detects_nothing() {
        let mut cpu = boot("main: jr $t0", DetectionPolicy::Off);
        cpu.regs_mut().set(Reg::T0, TEXT_BASE, WordTaint::ALL); // jump to self: fine
        cpu.step().unwrap();
        assert_eq!(cpu.pc(), TEXT_BASE);
        assert_eq!(cpu.stats().tainted_pointer_dereferences, 1);
    }

    #[test]
    fn compare_untaints_operands_in_register_file() {
        let mut cpu = boot(
            "main: slt $t2, $t0, $t1\nbreak 0",
            DetectionPolicy::PointerTaintedness,
        );
        cpu.regs_mut().set(Reg::T0, 5, WordTaint::ALL);
        cpu.regs_mut().set(Reg::T1, 9, WordTaint::ALL);
        run(&mut cpu, 10).unwrap();
        assert_eq!(cpu.regs().taint(Reg::T0), WordTaint::CLEAN);
        assert_eq!(cpu.regs().taint(Reg::T1), WordTaint::CLEAN);
        assert_eq!(cpu.regs().taint(Reg::T2), WordTaint::CLEAN);
        assert_eq!(cpu.regs().value(Reg::T2), 1);
    }

    #[test]
    fn branch_untaints_compared_registers() {
        let mut cpu = boot(
            "main: beq $t0, $t1, out\nout: break 0",
            DetectionPolicy::PointerTaintedness,
        );
        cpu.regs_mut().set(Reg::T0, 1, WordTaint::ALL);
        cpu.regs_mut().set(Reg::T1, 2, WordTaint::ALL);
        run(&mut cpu, 10).unwrap();
        assert_eq!(cpu.regs().taint(Reg::T0), WordTaint::CLEAN);
        assert_eq!(cpu.regs().taint(Reg::T1), WordTaint::CLEAN);
    }

    #[test]
    fn xor_zero_idiom_untaints() {
        let mut cpu = boot(
            "main: xor $t1, $t0, $t0\nbreak 0",
            DetectionPolicy::PointerTaintedness,
        );
        cpu.regs_mut().set(Reg::T0, 0x4141_4141, WordTaint::ALL);
        run(&mut cpu, 10).unwrap();
        assert_eq!(cpu.regs().get(Reg::T1), (0, WordTaint::CLEAN));
    }

    #[test]
    fn and_mask_untaints_constant_zero_bytes() {
        let mut cpu = boot(
            "main: li $t1, 0xff
                   and $t2, $t0, $t1
                   lw $t3, 0($t2)      # would alert if $t2 were tainted beyond byte 0
                   break 0",
            DetectionPolicy::PointerTaintedness,
        );
        cpu.regs_mut().set(Reg::T0, 0x4141_4141, WordTaint::ALL);
        // $t2 = 0x41 with only byte 0 tainted -> still tainted -> alert expected.
        let err = run(&mut cpu, 10).unwrap_err();
        assert!(matches!(err, CpuException::Security(_)));
        // But the upper three bytes were untainted by the mask:
        // re-run and inspect the taint before the load.
        let mut cpu2 = boot(
            "main: li $t1, 0xff\nand $t2, $t0, $t1\nbreak 0",
            DetectionPolicy::PointerTaintedness,
        );
        cpu2.regs_mut().set(Reg::T0, 0x4141_4141, WordTaint::ALL);
        run(&mut cpu2, 10).unwrap();
        assert_eq!(cpu2.regs().taint(Reg::T2).bits(), 0b0001);
    }

    #[test]
    fn loads_copy_memory_taint() {
        let mut cpu = boot(
            ".data
buf:    .space 8
        .text
main:   la $t0, buf
        lw $t1, 0($t0)
        lb $t2, 0($t0)
        lbu $t3, 0($t0)
        break 0",
            DetectionPolicy::PointerTaintedness,
        );
        // Taint the buffer as if recv() had filled it.
        let buf = ptaint_isa::DATA_BASE;
        cpu.mem_mut()
            .write_bytes(buf, &[0x80, 0, 0, 0], true)
            .unwrap();
        run(&mut cpu, 100).unwrap();
        assert_eq!(cpu.regs().taint(Reg::T1), WordTaint::ALL);
        // lb sign-extends: all four bytes derived from the tainted byte.
        assert_eq!(cpu.regs().taint(Reg::T2), WordTaint::ALL);
        assert_eq!(cpu.regs().value(Reg::T2), 0xffff_ff80);
        // lbu zero-extends: only byte 0 tainted.
        assert_eq!(cpu.regs().taint(Reg::T3).bits(), 0b0001);
    }

    #[test]
    fn stores_write_taint_to_memory() {
        let mut cpu = boot(
            ".data
buf:    .space 8
        .text
main:   la $t0, buf
        sw $t1, 0($t0)
        sb $t1, 4($t0)
        break 0",
            DetectionPolicy::PointerTaintedness,
        );
        cpu.regs_mut()
            .set(Reg::T1, 0xaabb_ccdd, WordTaint::from_bits(0b0011));
        run(&mut cpu, 100).unwrap();
        let buf = ptaint_isa::DATA_BASE;
        let taint = cpu.mem().read_taint(buf, 5).unwrap();
        assert_eq!(taint, vec![true, true, false, false, true]);
    }

    #[test]
    fn syscall_traps_and_resumes() {
        let mut cpu = boot(
            "main: li $v0, 42\nsyscall\nmove $t0, $v0\nbreak 0",
            DetectionPolicy::PointerTaintedness,
        );
        assert!(matches!(cpu.step().unwrap(), StepEvent::Executed));
        assert!(matches!(cpu.step().unwrap(), StepEvent::SyscallTrap));
        // Host handles the syscall: writes a result.
        cpu.regs_mut().set(Reg::V0, 7, WordTaint::CLEAN);
        run(&mut cpu, 10).unwrap();
        assert_eq!(cpu.regs().value(Reg::T0), 7);
        assert_eq!(cpu.stats().syscalls, 1);
    }

    #[test]
    fn null_dereference_faults() {
        let mut cpu = boot("main: lw $t0, 0($zero)\nbreak 0", DetectionPolicy::Off);
        assert!(matches!(run(&mut cpu, 10), Err(CpuException::Mem(_))));
    }

    #[test]
    fn undecodable_pc_reports_decode_error() {
        let mut mem = MemorySystem::flat();
        mem.write_u32(TEXT_BASE, 0xffff_ffff, WordTaint::CLEAN)
            .unwrap();
        let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
        cpu.set_pc(TEXT_BASE);
        assert!(matches!(
            cpu.step(),
            Err(CpuException::Decode { pc: TEXT_BASE, .. })
        ));
    }

    #[test]
    fn recent_trace_keeps_tail() {
        let mut cpu = boot(
            "main: li $t0, 1\nli $t1, 2\nbreak 0",
            DetectionPolicy::PointerTaintedness,
        );
        run(&mut cpu, 10).unwrap();
        let trace = cpu.recent_trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].0, TEXT_BASE);
    }

    #[test]
    fn cached_engine_is_the_default_and_counts_cache_traffic() {
        let mut cpu = boot(
            "main: li $t0, 1\nli $t1, 2\nbreak 0",
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(cpu.engine(), Engine::Cached);
        run(&mut cpu, 10).unwrap();
        let stats = cpu.stats();
        assert_eq!(stats.decode_cache_misses, 1, "one block predecode");
        assert_eq!(
            stats.decode_cache_hits,
            stats.instructions - 1,
            "everything after the first step dispatches from the cache"
        );

        let mut interp = boot(
            "main: li $t0, 1\nli $t1, 2\nbreak 0",
            DetectionPolicy::PointerTaintedness,
        );
        interp.set_engine(Engine::Interp);
        run(&mut interp, 10).unwrap();
        assert_eq!(interp.stats().decode_cache_hits, 0);
        assert_eq!(interp.stats().decode_cache_misses, 0);
        assert_eq!(
            interp.stats().without_decode_cache(),
            cpu.stats().without_decode_cache()
        );
    }

    /// Self-modifying code: a store into a text page must invalidate the
    /// decode cache and force a re-decode of the patched word.
    #[test]
    fn store_into_text_invalidates_decode_cache() {
        // The patch turns `li $t2, 1` (at label `patch`) into
        // `addiu $t2, $zero, 99`; executing a stale decode would leave 1.
        let patched = Instr::IAlu {
            op: IAluOp::Addiu,
            rt: Reg::T2,
            rs: Reg::ZERO,
            imm: 99,
        }
        .encode();
        let src = format!(
            "main:   la $t0, patch
                     li $t1, 0x{patched:08x}
                     sw $t1, 0($t0)
            patch:   li $t2, 1
                     break 0"
        );
        let mut cpu = boot(&src, DetectionPolicy::PointerTaintedness);
        run(&mut cpu, 100).unwrap();
        assert_eq!(
            cpu.regs().value(Reg::T2),
            99,
            "the patched instruction must execute, not the stale decode"
        );
        let stats = cpu.stats();
        assert!(stats.decode_cache_invalidations >= 1, "{stats:?}");
        assert!(stats.decode_cache_misses >= 2, "re-decode after the patch");
        assert!(stats.decode_cache_hits >= 1);

        // The interpreter is the oracle: same program, same result.
        let mut interp = boot(&src, DetectionPolicy::PointerTaintedness);
        interp.set_engine(Engine::Interp);
        run(&mut interp, 100).unwrap();
        assert_eq!(interp.regs().value(Reg::T2), 99);
        assert_eq!(
            interp.stats().without_decode_cache(),
            cpu.stats().without_decode_cache()
        );
    }

    /// Elision skips the check probe at proven sites without disturbing
    /// anything architectural: a run with every site proven matches a run
    /// with no proven set, modulo the engine-activity counters.
    #[test]
    fn proven_sites_elide_checks_without_changing_state() {
        let src = ".data
buf:    .space 8
        .text
main:   la $t0, buf
        li $t2, 0
loop:   lw $t1, 0($t0)
        sw $t2, 4($t0)
        addiu $t2, $t2, 1
        li $t3, 5
        bne $t2, $t3, loop
        break 0";
        let image = assemble(src).expect("test program must assemble");
        let every_pc: Vec<u32> = (0..image.text.len() as u32)
            .map(|i| image.text_base + 4 * i)
            .collect();

        let mut elided = boot(src, DetectionPolicy::PointerTaintedness);
        elided.install_proven_checks(every_pc);
        assert!(elided.has_proven_checks());
        run(&mut elided, 100).unwrap();
        // Iterations after the block predecode dispatch from the cache and
        // skip both the load and the store check.
        assert!(elided.stats().elided_checks >= 4, "{:?}", elided.stats());

        let mut full = boot(src, DetectionPolicy::PointerTaintedness);
        run(&mut full, 100).unwrap();
        assert_eq!(full.stats().elided_checks, 0);
        assert_eq!(
            full.stats().without_decode_cache(),
            elided.stats().without_decode_cache()
        );
        assert_eq!(full.regs().value(Reg::T1), elided.regs().value(Reg::T1));
    }

    /// A store into text drops the whole proven set: static analysis only
    /// described the original image, so after self-modification every check
    /// must run again (and refills never re-prove).
    #[test]
    fn smc_store_drops_all_proven_sites() {
        let patched = Instr::IAlu {
            op: IAluOp::Addiu,
            rt: Reg::T2,
            rs: Reg::ZERO,
            imm: 99,
        }
        .encode();
        let src = format!(
            "main:   la $t0, patch
                     li $t1, 0x{patched:08x}
                     sw $t1, 0($t0)
            patch:   li $t2, 1
                     break 0"
        );
        let image = assemble(&src).expect("test program must assemble");
        let every_pc: Vec<u32> = (0..image.text.len() as u32)
            .map(|i| image.text_base + 4 * i)
            .collect();

        let mut cpu = boot(&src, DetectionPolicy::PointerTaintedness);
        cpu.install_proven_checks(every_pc);
        run(&mut cpu, 100).unwrap();
        assert_eq!(cpu.regs().value(Reg::T2), 99, "patched word must execute");
        assert!(
            !cpu.has_proven_checks(),
            "self-modification must wipe the proven set"
        );
        assert!(cpu.stats().decode_cache_invalidations >= 1);

        // Still architecturally identical to the uninstrumented run.
        let mut full = boot(&src, DetectionPolicy::PointerTaintedness);
        run(&mut full, 100).unwrap();
        assert_eq!(
            full.stats().without_decode_cache(),
            cpu.stats().without_decode_cache()
        );
    }

    #[test]
    fn sra_vs_srl_semantics() {
        let mut cpu = boot(
            "main: li $t0, 0x80000000
                   sra $t1, $t0, 4
                   srl $t2, $t0, 4
                   break 0",
            DetectionPolicy::PointerTaintedness,
        );
        run(&mut cpu, 10).unwrap();
        assert_eq!(cpu.regs().value(Reg::T1), 0xf800_0000);
        assert_eq!(cpu.regs().value(Reg::T2), 0x0800_0000);
    }

    #[test]
    fn division_semantics_and_taint() {
        let mut cpu = boot(
            "main: li $t0, -7
                   li $t1, 2
                   div $t0, $t1
                   mflo $t2     # -3
                   mfhi $t3     # -1
                   break 0",
            DetectionPolicy::PointerTaintedness,
        );
        cpu.regs_mut().set_taint(Reg::T0, WordTaint::ALL);
        // note: li overwrote the taint; retaint after the li executes instead
        run(&mut cpu, 10).unwrap();
        assert_eq!(cpu.regs().value(Reg::T2) as i32, -3);
        assert_eq!(cpu.regs().value(Reg::T3) as i32, -1);

        // Tainted dividend taints both HI and LO.
        let mut cpu = boot(
            "main: divu $t0, $t1\nmflo $t2\nmfhi $t3\nbreak 0",
            DetectionPolicy::PointerTaintedness,
        );
        cpu.regs_mut().set(Reg::T0, 10, WordTaint::ALL);
        cpu.regs_mut().set(Reg::T1, 3, WordTaint::CLEAN);
        run(&mut cpu, 10).unwrap();
        assert_eq!(cpu.regs().value(Reg::T2), 3);
        assert_eq!(cpu.regs().value(Reg::T3), 1);
        assert_eq!(cpu.regs().taint(Reg::T2), WordTaint::ALL);
        assert_eq!(cpu.regs().taint(Reg::T3), WordTaint::ALL);
    }

    #[test]
    fn fork_runs_bit_identical_to_source() {
        let src = "main:  li $t0, 0
                          li $t1, 0
        loop:             addiu $t0, $t0, 1
                          addu $t1, $t1, $t0
                          li $t2, 25
                          bne $t0, $t2, loop
                          break 0";
        let cpu = boot(src, DetectionPolicy::PointerTaintedness);
        let mut fresh = boot(src, DetectionPolicy::PointerTaintedness);
        let mut child = cpu.fork();
        run(&mut child, 1000).unwrap();
        run(&mut fresh, 1000).unwrap();
        assert_eq!(child.regs(), fresh.regs());
        assert_eq!(child.pc(), fresh.pc());
        // From a pre-execution fork even the decode-cache counters match a
        // fresh boot: the fork rebuilds its cache on demand.
        assert_eq!(child.stats(), fresh.stats());
        assert_eq!(child.recent_trace(), fresh.recent_trace());
    }

    #[test]
    fn fork_stores_never_alias_the_parent() {
        let mut cpu = boot(
            ".data
        buf:    .space 8
                .text
        main:   la $t0, buf
                li $t1, 0x11111111
                sw $t1, 0($t0)
                break 0",
            DetectionPolicy::PointerTaintedness,
        );
        let mut child = cpu.fork();
        run(&mut child, 100).unwrap();
        let buf = child.regs().value(Reg::T0);
        assert_eq!(child.mem_mut().read_u32(buf).unwrap().0, 0x1111_1111);
        // The parent's copy of `buf` is untouched by the child's store.
        assert_eq!(cpu.mem_mut().read_u32(buf).unwrap().0, 0);
        // ...and the parent still runs to the same result itself.
        run(&mut cpu, 100).unwrap();
        assert_eq!(cpu.mem_mut().read_u32(buf).unwrap().0, 0x1111_1111);
    }

    #[test]
    fn fork_carries_a_private_proven_set() {
        let cpu = {
            let mut c = boot("main: break 0", DetectionPolicy::PointerTaintedness);
            c.install_proven_checks([TEXT_BASE]);
            c
        };
        let mut child = cpu.fork();
        assert!(child.has_proven_checks());
        // Invalidation in the child must not revoke the parent's proofs.
        child.mem_mut().watch_code_page(TEXT_BASE / PAGE_SIZE);
        child
            .mem_mut()
            .write_u32(TEXT_BASE, 0, WordTaint::CLEAN)
            .unwrap();
        child.invalidate_dirty_pages();
        assert!(!child.has_proven_checks());
        assert!(cpu.has_proven_checks());
    }
}
