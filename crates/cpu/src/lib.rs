#![warn(missing_docs)]

//! # ptaint-cpu — the taint-tracking processor
//!
//! This crate implements the processor architecture of the DSN 2005 paper
//! *"Defeating Memory Corruption Attacks via Pointer Taintedness Detection"*:
//!
//! * a register file in which every register carries four taintedness bits,
//!   one per byte ([`RegisterFile`]);
//! * the **taintedness-tracking ALU** of the paper's Table 1
//!   ([`taint_alu`]) — generic bytewise-OR propagation with the four special
//!   cases (shift smear, AND-with-untainted-zero, the `xor r,s,s` zeroing
//!   idiom, and compare-untaints-operands);
//! * the **pointer taintedness detectors** (paper §4.3): the load/store
//!   detector checks the taint bits of the address word, the jump detector
//!   checks the `jr`/`jalr` target register; a flagged instruction raises a
//!   [`SecurityAlert`] ([`CpuException::Security`]);
//! * three [`DetectionPolicy`] settings — the paper's full pointer
//!   taintedness detection, a *control-data-only* baseline equivalent to
//!   Minos/Secure Program Execution, and off;
//! * a functional executor ([`Cpu`]) and a 5-stage in-order
//!   [`pipeline`] timing model that places the detectors at
//!   ID/EX and EX/MEM and raises the exception at retirement, as in the
//!   paper's Figure 3.
//!
//! The CPU traps to its host on `syscall`; the virtual operating system in
//! `ptaint-os` implements the kernel side (and the taint-marking of input
//! data).

mod alert;
mod cpu;
mod decode_cache;
pub mod pipeline;
mod regs;
mod rules;
mod stats;
pub mod taint_alu;

pub use alert::{AlertKind, DetectionPolicy, SecurityAlert};
pub use cpu::{Cpu, CpuException, Engine, StepEvent, Steppable, TaintWatch};
pub use regs::RegisterFile;
pub use rules::TaintRules;
pub use stats::ExecStats;
