//! Configurable taint-propagation rules, for ablation studies.
//!
//! The paper's Table 1 contains four *special-case* rules layered on the
//! generic bytewise-OR propagation. Each exists for a reason the paper
//! argues informally; this configuration makes every special case
//! switchable so the workspace's ablation benches can demonstrate those
//! reasons empirically:
//!
//! * disabling **compare-untaint** floods benign programs with taint and
//!   produces false positives on the Table 3 workloads (validated input is
//!   no longer trusted);
//! * disabling the **`xor r,r` idiom** or **AND-with-zero** rules leaves
//!   compiler-zeroed registers tainted, again risking false positives;
//! * disabling **shift smear** lets taint escape through sub-byte shifts
//!   (a byte-granular model of bit flow), weakening detection of attacks
//!   that assemble pointers with shift arithmetic.

/// Which Table 1 special cases are active. [`TaintRules::PAPER`] (the
/// default) enables all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaintRules {
    /// Compare instructions untaint their operands (Table 1 row 5).
    pub compare_untaints: bool,
    /// AND with an untainted zero byte untaints (row 3).
    pub and_untaints: bool,
    /// `xor r1, r2, r2` produces an untainted zero (row 4).
    pub xor_idiom_untaints: bool,
    /// Shifts smear taint to the adjacent byte along the shift direction
    /// (row 2).
    pub shift_smear: bool,
}

impl TaintRules {
    /// The paper's full rule set.
    pub const PAPER: TaintRules = TaintRules {
        compare_untaints: true,
        and_untaints: true,
        xor_idiom_untaints: true,
        shift_smear: true,
    };

    /// Pure bytewise-OR propagation with no special cases — the maximally
    /// conservative (and false-positive-prone) variant.
    pub const GENERIC_ONLY: TaintRules = TaintRules {
        compare_untaints: false,
        and_untaints: false,
        xor_idiom_untaints: false,
        shift_smear: false,
    };

    /// The paper's rules with one switch flipped off, for ablations.
    #[must_use]
    pub const fn without_compare_untaint() -> TaintRules {
        TaintRules {
            compare_untaints: false,
            ..TaintRules::PAPER
        }
    }

    /// The paper's rules without the AND-with-zero untaint.
    #[must_use]
    pub const fn without_and_untaint() -> TaintRules {
        TaintRules {
            and_untaints: false,
            ..TaintRules::PAPER
        }
    }

    /// The paper's rules without the xor-zeroing idiom.
    #[must_use]
    pub const fn without_xor_idiom() -> TaintRules {
        TaintRules {
            xor_idiom_untaints: false,
            ..TaintRules::PAPER
        }
    }

    /// The paper's rules without shift smearing.
    #[must_use]
    pub const fn without_shift_smear() -> TaintRules {
        TaintRules {
            shift_smear: false,
            ..TaintRules::PAPER
        }
    }
}

impl Default for TaintRules {
    fn default() -> TaintRules {
        TaintRules::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rules_are_the_default_and_fully_enabled() {
        let rules = TaintRules::default();
        assert_eq!(rules, TaintRules::PAPER);
        assert!(rules.compare_untaints);
        assert!(rules.and_untaints);
        assert!(rules.xor_idiom_untaints);
        assert!(rules.shift_smear);
    }

    #[test]
    fn ablation_constructors_flip_exactly_one_switch() {
        let r = TaintRules::without_compare_untaint();
        assert!(!r.compare_untaints && r.and_untaints && r.xor_idiom_untaints && r.shift_smear);
        let r = TaintRules::without_and_untaint();
        assert!(r.compare_untaints && !r.and_untaints && r.xor_idiom_untaints && r.shift_smear);
        let r = TaintRules::without_xor_idiom();
        assert!(r.compare_untaints && r.and_untaints && !r.xor_idiom_untaints && r.shift_smear);
        let r = TaintRules::without_shift_smear();
        assert!(r.compare_untaints && r.and_untaints && r.xor_idiom_untaints && !r.shift_smear);
        let r = TaintRules::GENERIC_ONLY;
        assert!(!r.compare_untaints && !r.and_untaints && !r.xor_idiom_untaints && !r.shift_smear);
    }
}
