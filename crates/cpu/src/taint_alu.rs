//! The taintedness-tracking ALU — a direct implementation of the paper's
//! **Table 1: Taintedness Propagation by ALU Instructions**.
//!
//! | ALU instruction type | Taintedness propagation |
//! |---|---|
//! | generic `op r1,r2,r3` | `taint(r1) = taint(r2) OR taint(r3)` (bytewise) |
//! | shift | a tainted byte also taints its neighbour along the shift direction |
//! | `and` | untaint each result byte AND-ed with an *untainted zero* byte |
//! | `xor r1,r2,r2` | `taint(r1) = 0000` (compiler zeroing idiom) |
//! | compare | untaint every byte of *the operands* |
//!
//! The compare rule trusts data that the program has validated (paper §4.2);
//! it is also the deliberate false-negative window analysed in §5.3. In this
//! ISA the compare instructions are `slt`/`sltu`/`slti`/`sltiu` and the
//! conditional branches.
//!
//! Every function here is pure; the [`Cpu`](crate::Cpu) applies the
//! compare-untaint side effect to the register file itself.

use ptaint_isa::{IAluOp, RAluOp, ShiftOp};
use ptaint_mem::WordTaint;

use crate::TaintRules;

/// Generic two-source propagation: bytewise OR (Table 1, row 1).
#[must_use]
pub fn generic(a: WordTaint, b: WordTaint) -> WordTaint {
    a | b
}

/// Result taint of a register-register ALU operation.
///
/// Implements all Table 1 rows relevant to R-type arithmetic:
///
/// * `xor rd, rs, rs` (same source register twice) produces constant zero and
///   is therefore untainted;
/// * `and` clears every result byte whose corresponding byte in either
///   operand is an untainted zero (the result byte is the constant 0
///   regardless of the other operand);
/// * compare instructions produce an untainted boolean (their operand
///   untainting is applied separately, see [`compare_operand_taint`]);
/// * everything else is the generic bytewise OR.
#[must_use]
pub fn ralu_result(
    op: RAluOp,
    a_val: u32,
    a_taint: WordTaint,
    b_val: u32,
    b_taint: WordTaint,
    same_source_reg: bool,
) -> WordTaint {
    ralu_result_with(
        TaintRules::PAPER,
        op,
        a_val,
        a_taint,
        b_val,
        b_taint,
        same_source_reg,
    )
}

/// [`ralu_result`] under an explicit (possibly ablated) rule set.
#[must_use]
pub fn ralu_result_with(
    rules: TaintRules,
    op: RAluOp,
    a_val: u32,
    a_taint: WordTaint,
    b_val: u32,
    b_taint: WordTaint,
    same_source_reg: bool,
) -> WordTaint {
    match op {
        RAluOp::Xor if same_source_reg && rules.xor_idiom_untaints => WordTaint::CLEAN,
        RAluOp::And if rules.and_untaints => and_result(a_val, a_taint, b_val, b_taint),
        _ if op.is_compare() && rules.compare_untaints => WordTaint::CLEAN,
        _ => generic(a_taint, b_taint),
    }
}

/// Result taint of an AND: start from the generic OR, then untaint each byte
/// AND-ed with an untainted zero (Table 1, row 3).
#[must_use]
pub fn and_result(a_val: u32, a_taint: WordTaint, b_val: u32, b_taint: WordTaint) -> WordTaint {
    let mut taint = generic(a_taint, b_taint);
    let (a, b) = (a_val.to_le_bytes(), b_val.to_le_bytes());
    for i in 0..4 {
        let a_untainted_zero = a[i] == 0 && !a_taint.byte(i);
        let b_untainted_zero = b[i] == 0 && !b_taint.byte(i);
        if a_untainted_zero || b_untainted_zero {
            taint = taint.with_byte(i, false);
        }
    }
    taint
}

/// Result taint of an immediate ALU operation. The immediate is a program
/// constant and contributes no taint; `andi` additionally applies the
/// untainted-zero rule against the extended immediate (its zero-extension
/// bytes are constant zeroes, so result bytes 2 and 3 are always untainted).
#[must_use]
pub fn ialu_result(op: IAluOp, src_val: u32, src_taint: WordTaint, imm_ext: u32) -> WordTaint {
    ialu_result_with(TaintRules::PAPER, op, src_val, src_taint, imm_ext)
}

/// [`ialu_result`] under an explicit (possibly ablated) rule set.
#[must_use]
pub fn ialu_result_with(
    rules: TaintRules,
    op: IAluOp,
    src_val: u32,
    src_taint: WordTaint,
    imm_ext: u32,
) -> WordTaint {
    match op {
        IAluOp::Andi if rules.and_untaints => {
            and_result(src_val, src_taint, imm_ext, WordTaint::CLEAN)
        }
        _ if op.is_compare() && rules.compare_untaints => WordTaint::CLEAN,
        _ => src_taint,
    }
}

/// Result taint of a shift (Table 1, row 2): the operand's taint, smeared one
/// byte along the shift direction. For register-variable shifts the amount
/// register's taint is OR-ed in first (the result depends on it).
#[must_use]
pub fn shift_result(op: ShiftOp, operand_taint: WordTaint, amount_taint: WordTaint) -> WordTaint {
    shift_result_with(TaintRules::PAPER, op, operand_taint, amount_taint)
}

/// [`shift_result`] under an explicit (possibly ablated) rule set.
#[must_use]
pub fn shift_result_with(
    rules: TaintRules,
    op: ShiftOp,
    operand_taint: WordTaint,
    amount_taint: WordTaint,
) -> WordTaint {
    let base = generic(operand_taint, amount_taint);
    if !rules.shift_smear {
        return base;
    }
    if op.is_left() {
        base.smear_left()
    } else {
        base.smear_right()
    }
}

/// Operand taint after a compare instruction (Table 1, row 5): cleared.
/// Compare instructions model input-validation code, so validated data is
/// trusted afterwards.
#[must_use]
pub fn compare_operand_taint() -> WordTaint {
    WordTaint::CLEAN
}

/// Name of the Table 1 rule [`ralu_result_with`] applies for this operation,
/// for labeling trace events. Mirrors that function's dispatch exactly.
#[must_use]
pub fn ralu_rule(rules: TaintRules, op: RAluOp, same_source_reg: bool) -> &'static str {
    match op {
        RAluOp::Xor if same_source_reg && rules.xor_idiom_untaints => "xor-idiom",
        RAluOp::And if rules.and_untaints => "and-mask",
        _ if op.is_compare() && rules.compare_untaints => "compare",
        _ => "generic",
    }
}

/// Name of the rule [`ialu_result_with`] applies, for labeling trace events.
#[must_use]
pub fn ialu_rule(rules: TaintRules, op: IAluOp) -> &'static str {
    match op {
        IAluOp::Andi if rules.and_untaints => "and-mask",
        _ if op.is_compare() && rules.compare_untaints => "compare",
        _ => "generic",
    }
}

/// Name of the rule [`shift_result_with`] applies, for labeling trace events.
#[must_use]
pub fn shift_rule(rules: TaintRules, op: ShiftOp) -> &'static str {
    if !rules.shift_smear {
        "generic"
    } else if op.is_left() {
        "shift-smear-left"
    } else {
        "shift-smear-right"
    }
}

/// Result taint of a load, given the taint bits read from memory.
///
/// * word loads copy all four bits;
/// * halfword/byte loads copy the low bits; **sign-extension** bytes inherit
///   the taint of the byte they were derived from, while **zero-extension**
///   bytes are untainted constants.
#[must_use]
pub fn load_result(width: ptaint_isa::MemWidth, signed: bool, mem_taint: WordTaint) -> WordTaint {
    use ptaint_isa::MemWidth;
    match width {
        MemWidth::Word => mem_taint,
        MemWidth::Half => {
            let low = mem_taint.low_half();
            if signed {
                let ext = low.byte(1);
                low.with_byte(2, ext).with_byte(3, ext)
            } else {
                low
            }
        }
        MemWidth::Byte => {
            let b0 = mem_taint.byte(0);
            let t = WordTaint::CLEAN.with_byte(0, b0);
            if signed {
                t.with_byte(1, b0).with_byte(2, b0).with_byte(3, b0)
            } else {
                t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_isa::MemWidth;

    const T0: WordTaint = WordTaint::CLEAN;
    fn t(bits: u8) -> WordTaint {
        WordTaint::from_bits(bits)
    }

    // ---- Table 1 row 1: generic OR ----

    #[test]
    fn generic_is_bytewise_or() {
        assert_eq!(generic(t(0b0101), t(0b0011)), t(0b0111));
        assert_eq!(generic(T0, T0), T0);
        assert_eq!(generic(WordTaint::ALL, T0), WordTaint::ALL);
    }

    #[test]
    fn add_like_ops_use_generic_rule() {
        for op in [
            RAluOp::Add,
            RAluOp::Addu,
            RAluOp::Sub,
            RAluOp::Subu,
            RAluOp::Or,
            RAluOp::Nor,
        ] {
            assert_eq!(
                ralu_result(op, 5, t(0b0001), 6, t(0b1000), false),
                t(0b1001),
                "{op:?}"
            );
        }
    }

    #[test]
    fn no_taint_from_untainted_operands() {
        // Soundness: untainted inputs can never produce tainted outputs.
        for op in RAluOp::ALL {
            assert_eq!(ralu_result(op, 0xdead, T0, 0xbeef, T0, false), T0, "{op:?}");
        }
    }

    // ---- Table 1 row 2: shift smear ----

    #[test]
    fn left_shift_smears_toward_msb() {
        assert_eq!(shift_result(ShiftOp::Sll, t(0b0001), T0), t(0b0011));
        assert_eq!(shift_result(ShiftOp::Sll, t(0b1000), T0), t(0b1000));
    }

    #[test]
    fn right_shifts_smear_toward_lsb() {
        assert_eq!(shift_result(ShiftOp::Srl, t(0b1000), T0), t(0b1100));
        assert_eq!(shift_result(ShiftOp::Sra, t(0b0100), T0), t(0b0110));
        assert_eq!(shift_result(ShiftOp::Srl, t(0b0001), T0), t(0b0001));
    }

    #[test]
    fn variable_shift_amount_taint_propagates() {
        // Tainted shift amount taints the result even if the operand is clean.
        assert_eq!(shift_result(ShiftOp::Sll, T0, t(0b0001)), t(0b0011));
        assert_eq!(shift_result(ShiftOp::Srl, T0, T0), T0);
    }

    // ---- Table 1 row 3: AND with untainted zero ----

    #[test]
    fn and_with_untainted_zero_untaints() {
        // Masking a fully tainted word with untainted 0x000000ff keeps only byte 0 tainted.
        assert_eq!(
            and_result(0xaabb_ccdd, WordTaint::ALL, 0x0000_00ff, T0),
            t(0b0001)
        );
        // Masking with untainted zero untaints everything.
        assert_eq!(and_result(0xffff_ffff, WordTaint::ALL, 0, T0), T0);
    }

    #[test]
    fn and_with_tainted_zero_stays_tainted() {
        // A zero byte that is itself tainted does not untaint: the attacker
        // controls it, so the result is still attacker-derived.
        assert_eq!(
            and_result(0xffff_ffff, T0, 0, WordTaint::ALL),
            WordTaint::ALL
        );
    }

    #[test]
    fn and_nonzero_bytes_use_generic_or() {
        assert_eq!(
            and_result(0x0101_0101, t(0b0001), 0x01ff_ff01, t(0b1000)),
            t(0b1001)
        );
        assert_eq!(
            ralu_result(RAluOp::And, 0xff, WordTaint::ALL, 0xff, T0, false),
            t(0b0001)
        );
    }

    // ---- Table 1 row 4: xor r,s,s idiom ----

    #[test]
    fn xor_same_register_untaints() {
        assert_eq!(
            ralu_result(
                RAluOp::Xor,
                0x41414141,
                WordTaint::ALL,
                0x41414141,
                WordTaint::ALL,
                true
            ),
            T0
        );
        // Different registers holding tainted data still propagate.
        assert_eq!(
            ralu_result(RAluOp::Xor, 1, WordTaint::ALL, 2, T0, false),
            WordTaint::ALL
        );
    }

    // ---- Table 1 row 5: compare untaints ----

    #[test]
    fn compare_results_and_operands_are_untainted() {
        assert_eq!(
            ralu_result(RAluOp::Slt, 1, WordTaint::ALL, 2, WordTaint::ALL, false),
            T0
        );
        assert_eq!(
            ralu_result(RAluOp::Sltu, 1, WordTaint::ALL, 2, WordTaint::ALL, false),
            T0
        );
        assert_eq!(compare_operand_taint(), T0);
    }

    // ---- immediate forms ----

    #[test]
    fn immediate_ops_propagate_source_taint_only() {
        assert_eq!(
            ialu_result(IAluOp::Addiu, 5, t(0b0110), 0xffff_fff0),
            t(0b0110)
        );
        assert_eq!(ialu_result(IAluOp::Ori, 5, t(0b0001), 0x00ff), t(0b0001));
        assert_eq!(
            ialu_result(IAluOp::Xori, 5, WordTaint::ALL, 0x00ff),
            WordTaint::ALL
        );
    }

    #[test]
    fn andi_untaints_via_zero_extension() {
        // andi $r, $tainted, 0xff: bytes 1..3 of the extended immediate are
        // untainted zeroes, so only byte 0 can stay tainted.
        assert_eq!(
            ialu_result(IAluOp::Andi, 0xffff_ffff, WordTaint::ALL, 0x0000_00ff),
            t(0b0001)
        );
    }

    #[test]
    fn slti_untaints_result() {
        assert_eq!(ialu_result(IAluOp::Slti, 9, WordTaint::ALL, 10), T0);
        assert_eq!(ialu_result(IAluOp::Sltiu, 9, WordTaint::ALL, 10), T0);
    }

    // ---- loads ----

    #[test]
    fn word_load_copies_all_bits() {
        assert_eq!(load_result(MemWidth::Word, true, t(0b1010)), t(0b1010));
    }

    #[test]
    fn signed_byte_load_extends_taint() {
        assert_eq!(load_result(MemWidth::Byte, true, t(0b0001)), WordTaint::ALL);
        assert_eq!(load_result(MemWidth::Byte, true, T0), T0);
        // Only byte 0 of the memory taint matters for a byte load.
        assert_eq!(load_result(MemWidth::Byte, true, t(0b1110)), T0);
    }

    #[test]
    fn unsigned_byte_load_zero_extension_is_untainted() {
        assert_eq!(load_result(MemWidth::Byte, false, t(0b0001)), t(0b0001));
        assert_eq!(
            load_result(MemWidth::Byte, false, WordTaint::ALL),
            t(0b0001)
        );
    }

    #[test]
    fn half_loads() {
        assert_eq!(
            load_result(MemWidth::Half, false, WordTaint::ALL),
            t(0b0011)
        );
        // Sign extension inherits the high byte's taint.
        assert_eq!(load_result(MemWidth::Half, true, t(0b0010)), t(0b1110));
        assert_eq!(load_result(MemWidth::Half, true, t(0b0001)), t(0b0001));
    }
}
