//! Execution statistics.

use std::fmt;

use ptaint_trace::ToJson;

/// Counters accumulated by the [`Cpu`](crate::Cpu) while executing.
///
/// These feed the paper's evaluation tables: instruction counts for the
/// false-positive runs of Table 3, and the tainted-instruction ratios behind
/// the overhead discussion of §5.4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Load instructions retired.
    pub loads: u64,
    /// Store instructions retired.
    pub stores: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Register-indirect jumps (`jr`/`jalr`) retired.
    pub register_jumps: u64,
    /// `syscall` traps taken.
    pub syscalls: u64,
    /// Instructions that read at least one tainted source operand.
    pub tainted_operand_instructions: u64,
    /// Loads/stores whose *address word* was tainted (counted even when the
    /// detection policy does not raise an alert, so the baseline policies can
    /// report what they missed).
    pub tainted_pointer_dereferences: u64,
    /// Steps the cached engine dispatched straight from its decode cache
    /// (always zero under the interpreter).
    pub decode_cache_hits: u64,
    /// Steps the cached engine predecoded a straight-line block (first
    /// execution of a page, or re-decode after an invalidation).
    pub decode_cache_misses: u64,
    /// Cached text pages dropped because something stored into them
    /// (self-modifying-code coherence).
    pub decode_cache_invalidations: u64,
    /// Pointer-taintedness checks skipped because static analysis proved
    /// the site clean (always zero under the interpreter, or when no
    /// proven-clean set is installed).
    pub elided_checks: u64,
    /// Faults the injection harness applied to this run (I/O degradations
    /// and state corruptions). Zero outside fault-injection campaigns.
    pub injected_faults: u64,
    /// Times the periodic decode-cache integrity check (ProvenClean bitmap
    /// replicas + page checksums) tripped and the CPU entered degraded
    /// mode: proofs dropped, elision off, every check run in full.
    pub integrity_failures: u64,
}

impl ExecStats {
    /// Fraction of instructions that touched tainted data — the dynamic
    /// taint activity of a workload.
    #[must_use]
    pub fn tainted_instruction_ratio(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.tainted_operand_instructions as f64 / self.instructions as f64
        }
    }

    /// This record with the decode-cache and check-elision counters zeroed.
    ///
    /// Those counters describe *engine* activity, not guest-visible
    /// behaviour, so the engine differential tests compare
    /// `a.without_decode_cache() == b.without_decode_cache()` to assert
    /// that the interpreter and the cached engine agree on everything
    /// architecturally meaningful. Elided checks belong here too: a
    /// (sound) elision skips work whose outcome is already known, so the
    /// count is a property of the engine configuration, not the guest.
    #[must_use]
    pub fn without_decode_cache(mut self) -> ExecStats {
        self.decode_cache_hits = 0;
        self.decode_cache_misses = 0;
        self.decode_cache_invalidations = 0;
        self.elided_checks = 0;
        self
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions ({} loads, {} stores, {} branches, {} reg-jumps, {} syscalls), \
             {} tainted-operand ({:.4}%), {} tainted-pointer derefs, \
             decode-cache {}h/{}m/{}inv, {} elided checks, {} injected faults, \
             {} integrity failures",
            self.instructions,
            self.loads,
            self.stores,
            self.branches,
            self.register_jumps,
            self.syscalls,
            self.tainted_operand_instructions,
            self.tainted_instruction_ratio() * 100.0,
            self.tainted_pointer_dereferences,
            self.decode_cache_hits,
            self.decode_cache_misses,
            self.decode_cache_invalidations,
            self.elided_checks,
            self.injected_faults,
            self.integrity_failures
        )
    }
}

impl ToJson for ExecStats {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"instructions\":{},\"loads\":{},\"stores\":{},\"branches\":{},",
                "\"register_jumps\":{},\"syscalls\":{},\"tainted_operand_instructions\":{},",
                "\"tainted_pointer_dereferences\":{},\"decode_cache_hits\":{},",
                "\"decode_cache_misses\":{},\"decode_cache_invalidations\":{},",
                "\"elided_checks\":{},\"injected_faults\":{},\"integrity_failures\":{}}}"
            ),
            self.instructions,
            self.loads,
            self.stores,
            self.branches,
            self.register_jumps,
            self.syscalls,
            self.tainted_operand_instructions,
            self.tainted_pointer_dereferences,
            self.decode_cache_hits,
            self.decode_cache_misses,
            self.decode_cache_invalidations,
            self.elided_checks,
            self.injected_faults,
            self.integrity_failures
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_instructions() {
        assert_eq!(ExecStats::default().tainted_instruction_ratio(), 0.0);
    }

    #[test]
    fn ratio_math() {
        let stats = ExecStats {
            instructions: 200,
            tainted_operand_instructions: 50,
            ..ExecStats::default()
        };
        assert!((stats.tainted_instruction_ratio() - 0.25).abs() < 1e-12);
        assert!(stats.to_string().contains("200 instructions"));
    }

    #[test]
    fn display_reports_tainted_pointer_dereferences() {
        // Regression: baseline policies exist to report what they *missed*,
        // so the summary line must include this counter.
        let stats = ExecStats {
            instructions: 10,
            tainted_pointer_dereferences: 3,
            ..ExecStats::default()
        };
        assert!(stats.to_string().contains("3 tainted-pointer derefs"));
    }

    #[test]
    fn json_includes_every_counter() {
        let stats = ExecStats {
            instructions: 7,
            tainted_pointer_dereferences: 2,
            ..ExecStats::default()
        };
        let json = stats.to_json();
        assert!(json.contains("\"instructions\":7"));
        assert!(json.contains("\"tainted_pointer_dereferences\":2"));
    }

    #[test]
    fn decode_cache_counters_round_trip_and_normalize() {
        let stats = ExecStats {
            instructions: 100,
            decode_cache_hits: 98,
            decode_cache_misses: 2,
            decode_cache_invalidations: 1,
            elided_checks: 40,
            injected_faults: 5,
            ..ExecStats::default()
        };
        assert!(stats.to_string().contains("decode-cache 98h/2m/1inv"));
        assert!(stats.to_string().contains("40 elided checks"));
        assert!(stats.to_string().contains("5 injected faults"));
        let json = stats.to_json();
        assert!(json.contains("\"decode_cache_hits\":98"));
        assert!(json.contains("\"decode_cache_misses\":2"));
        assert!(json.contains("\"decode_cache_invalidations\":1"));
        assert!(json.contains("\"elided_checks\":40"));
        assert!(json.contains("\"injected_faults\":5"));
        // Normalizing erases only the engine-activity counters.
        let plain = stats.without_decode_cache();
        assert_eq!(plain.instructions, 100);
        assert_eq!(plain.decode_cache_hits, 0);
        assert_eq!(plain.decode_cache_misses, 0);
        assert_eq!(plain.decode_cache_invalidations, 0);
        assert_eq!(plain.elided_checks, 0);
        assert_eq!(
            plain,
            ExecStats {
                instructions: 100,
                injected_faults: 5,
                ..ExecStats::default()
            }
        );
    }

    #[test]
    fn integrity_failure_counter_round_trips_and_survives_normalization() {
        // Like injected faults, an integrity failure describes what the
        // experiment did to the machine, not engine activity: normalizing
        // for the engine differential must keep it.
        let stats = ExecStats {
            instructions: 50,
            integrity_failures: 2,
            ..ExecStats::default()
        };
        assert!(stats.to_string().contains("2 integrity failures"));
        assert!(stats.to_json().contains("\"integrity_failures\":2"));
        assert_eq!(stats.without_decode_cache().integrity_failures, 2);
    }

    #[test]
    fn injected_fault_counter_round_trips_and_survives_normalization() {
        // Injected faults are a property of the *experiment*, not of the
        // engine, so without_decode_cache must not erase them.
        let stats = ExecStats {
            instructions: 50,
            injected_faults: 3,
            ..ExecStats::default()
        };
        assert!(stats.to_string().contains("3 injected faults"));
        assert!(stats.to_json().contains("\"injected_faults\":3"));
        assert_eq!(stats.without_decode_cache().injected_faults, 3);
    }

    #[test]
    fn elision_counter_normalizes_across_engines() {
        // The elision counter is engine activity: a run with checks elided
        // and a run with every check executed must normalize to the same
        // record when everything architectural matches.
        let elided = ExecStats {
            instructions: 500,
            loads: 80,
            elided_checks: 77,
            decode_cache_hits: 499,
            decode_cache_misses: 1,
            ..ExecStats::default()
        };
        let full = ExecStats {
            instructions: 500,
            loads: 80,
            ..ExecStats::default()
        };
        assert_ne!(elided, full);
        assert_eq!(elided.without_decode_cache(), full.without_decode_cache());
    }
}
