//! The taint-extended register file.

use std::fmt;

use ptaint_isa::Reg;
use ptaint_mem::WordTaint;

/// The 32 general-purpose registers plus `HI`/`LO`, each extended with four
/// taintedness bits (one per byte), exactly as the paper extends
/// SimpleScalar's register file (§4.1–4.2).
///
/// Register `$0` is hardwired: its value and taint are always zero and writes
/// to it are discarded.
///
/// ```
/// use ptaint_cpu::RegisterFile;
/// use ptaint_isa::Reg;
/// use ptaint_mem::WordTaint;
///
/// let mut regs = RegisterFile::new();
/// regs.set(Reg::A0, 0x6463_6261, WordTaint::ALL);
/// assert_eq!(regs.get(Reg::A0), (0x6463_6261, WordTaint::ALL));
/// regs.set(Reg::ZERO, 7, WordTaint::ALL); // discarded
/// assert_eq!(regs.get(Reg::ZERO), (0, WordTaint::CLEAN));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct RegisterFile {
    values: [u32; 32],
    taints: [WordTaint; 32],
    hi: (u32, WordTaint),
    lo: (u32, WordTaint),
}

impl Default for RegisterFile {
    fn default() -> RegisterFile {
        RegisterFile::new()
    }
}

impl RegisterFile {
    /// All registers zero and untainted.
    #[must_use]
    pub fn new() -> RegisterFile {
        RegisterFile {
            values: [0; 32],
            taints: [WordTaint::CLEAN; 32],
            hi: (0, WordTaint::CLEAN),
            lo: (0, WordTaint::CLEAN),
        }
    }

    /// Reads a register's value and taint bits.
    #[must_use]
    pub fn get(&self, r: Reg) -> (u32, WordTaint) {
        (self.values[r.index()], self.taints[r.index()])
    }

    /// The value alone.
    #[must_use]
    pub fn value(&self, r: Reg) -> u32 {
        self.values[r.index()]
    }

    /// The taint bits alone.
    #[must_use]
    pub fn taint(&self, r: Reg) -> WordTaint {
        self.taints[r.index()]
    }

    /// Writes a register (value and taint). Writes to `$0` are discarded.
    pub fn set(&mut self, r: Reg, value: u32, taint: WordTaint) {
        if r.is_zero() {
            return;
        }
        self.values[r.index()] = value;
        self.taints[r.index()] = taint;
    }

    /// Overwrites only the taint bits (used by the compare-untaint rule of
    /// Table 1, which clears the *operands'* taint in place).
    pub fn set_taint(&mut self, r: Reg, taint: WordTaint) {
        if r.is_zero() {
            return;
        }
        self.taints[r.index()] = taint;
    }

    /// Reads `HI`.
    #[must_use]
    pub fn hi(&self) -> (u32, WordTaint) {
        self.hi
    }

    /// Reads `LO`.
    #[must_use]
    pub fn lo(&self) -> (u32, WordTaint) {
        self.lo
    }

    /// Writes `HI`.
    pub fn set_hi(&mut self, value: u32, taint: WordTaint) {
        self.hi = (value, taint);
    }

    /// Writes `LO`.
    pub fn set_lo(&mut self, value: u32, taint: WordTaint) {
        self.lo = (value, taint);
    }

    /// Number of registers (excluding `HI`/`LO`) with any tainted byte.
    #[must_use]
    pub fn tainted_register_count(&self) -> usize {
        self.taints.iter().filter(|t| t.any()).count()
    }
}

impl fmt::Debug for RegisterFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RegisterFile {{")?;
        for r in Reg::all() {
            let (v, t) = self.get(r);
            if v != 0 || t.any() {
                writeln!(f, "  {r} ({}) = {v:#010x} [{t}]", r.abi_name())?;
            }
        }
        writeln!(f, "  hi = {:#010x} [{}]", self.hi.0, self.hi.1)?;
        writeln!(f, "  lo = {:#010x} [{}]", self.lo.0, self.lo.1)?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_file_is_clean() {
        let regs = RegisterFile::new();
        for r in Reg::all() {
            assert_eq!(regs.get(r), (0, WordTaint::CLEAN));
        }
        assert_eq!(regs.tainted_register_count(), 0);
    }

    #[test]
    fn zero_register_is_hardwired() {
        let mut regs = RegisterFile::new();
        regs.set(Reg::ZERO, 123, WordTaint::ALL);
        regs.set_taint(Reg::ZERO, WordTaint::ALL);
        assert_eq!(regs.get(Reg::ZERO), (0, WordTaint::CLEAN));
    }

    #[test]
    fn value_and_taint_are_independent() {
        let mut regs = RegisterFile::new();
        regs.set(Reg::T0, 42, WordTaint::from_bits(0b0001));
        regs.set_taint(Reg::T0, WordTaint::CLEAN);
        assert_eq!(regs.get(Reg::T0), (42, WordTaint::CLEAN));
        assert_eq!(regs.value(Reg::T0), 42);
        assert_eq!(regs.taint(Reg::T0), WordTaint::CLEAN);
    }

    #[test]
    fn hi_lo_carry_taint() {
        let mut regs = RegisterFile::new();
        regs.set_hi(7, WordTaint::ALL);
        regs.set_lo(8, WordTaint::from_bits(0b0010));
        assert_eq!(regs.hi(), (7, WordTaint::ALL));
        assert_eq!(regs.lo(), (8, WordTaint::from_bits(0b0010)));
    }

    #[test]
    fn tainted_register_count_counts_words() {
        let mut regs = RegisterFile::new();
        regs.set(Reg::T0, 1, WordTaint::from_bits(0b0001));
        regs.set(Reg::T1, 2, WordTaint::ALL);
        regs.set(Reg::T2, 3, WordTaint::CLEAN);
        assert_eq!(regs.tainted_register_count(), 2);
    }

    #[test]
    fn debug_output_is_nonempty() {
        let regs = RegisterFile::new();
        let dbg = format!("{regs:?}");
        assert!(dbg.contains("RegisterFile"));
        assert!(dbg.contains("hi ="));
    }
}
