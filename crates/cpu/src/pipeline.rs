//! A 5-stage in-order pipeline timing model with the paper's detector
//! placement (Figure 3).
//!
//! The functional architectural state is produced by the wrapped [`Cpu`];
//! this module adds the *microarchitectural* story the paper tells:
//!
//! * the **jump taintedness detector** sits after the ID/EX latch, where the
//!   `jr`/`jalr` target register value is available;
//! * the **load/store taintedness detector** sits after the EX/MEM latch,
//!   where the effective address word is available;
//! * a flagged instruction is *marked malicious* at that stage but the
//!   **security exception is raised at retirement** (WB), so that — as in a
//!   real out-of-order or speculative machine — squashed wrong-path
//!   instructions can never raise spurious alerts;
//! * taint propagation is off the critical path (§5.4), so the model charges
//!   **no extra cycles** for taint tracking; cycles come only from the usual
//!   hazards (a one-cycle load-use stall and a two-cycle taken-control-flow
//!   penalty in this classic 5-stage configuration).
//!
//! Observability: the pipeline delegates all architectural work to the
//! wrapped [`Cpu`], so any [`ptaint_trace::Observer`] attached to it sees
//! the full event stream unchanged; the hazard pre-decode fetches through
//! the cache-bypassing instruction path and emits no extra events.

use ptaint_isa::Instr;

use crate::{Cpu, CpuException, SecurityAlert, StepEvent};

/// Stage of the 5-stage pipeline (IF, ID, EX, MEM, WB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Instruction fetch.
    Fetch,
    /// Decode / register read (the ID/EX latch follows this stage).
    Decode,
    /// Execute / address generation (the EX/MEM latch follows this stage).
    Execute,
    /// Memory access.
    Memory,
    /// Write-back / retirement — where security exceptions are raised.
    Retire,
}

/// Timing parameters of the pipeline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Bubble cycles when a load's consumer issues back-to-back.
    pub load_use_stall: u64,
    /// Bubble cycles after a taken branch or jump (fetch redirect).
    pub control_penalty: u64,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            load_use_stall: 1,
            control_penalty: 2,
        }
    }
}

/// Where and when a detector fired for one offending instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineDetection {
    /// The security alert carried to retirement.
    pub alert: SecurityAlert,
    /// The stage after which the instruction was marked malicious:
    /// [`Stage::Decode`] (ID/EX) for register jumps, [`Stage::Execute`]
    /// (EX/MEM) for loads/stores.
    pub marked_after: Stage,
    /// Cycle at which the malicious mark was set.
    pub marked_cycle: u64,
    /// Cycle at which the exception was raised (retirement).
    pub exception_cycle: u64,
}

/// Aggregate timing results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Total cycles to drain the pipeline.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Load-use stall bubbles inserted.
    pub load_use_stalls: u64,
    /// Control-flow redirect bubbles inserted.
    pub control_flushes: u64,
    /// The detection event, if a security exception ended execution.
    pub detection: Option<PipelineDetection>,
}

impl PipelineReport {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The pipeline wrapper. Drive it exactly like a [`Cpu`]: call
/// [`Pipeline::step`], handle [`StepEvent::SyscallTrap`] through the
/// operating system against [`Pipeline::cpu_mut`], stop on exceptions.
#[derive(Debug)]
pub struct Pipeline {
    cpu: Cpu,
    cfg: PipelineConfig,
    /// Issue cycle of the most recently issued instruction.
    last_issue: u64,
    /// Destination register of the previous instruction when it was a load.
    prev_load_dest: Option<ptaint_isa::Reg>,
    /// Whether the previous instruction redirected fetch.
    pending_redirect: bool,
    report: PipelineReport,
}

/// Pipeline depth: retirement happens four cycles after issue.
const DEPTH_TO_RETIRE: u64 = 4;

impl Pipeline {
    /// Wraps `cpu` with default timing parameters.
    #[must_use]
    pub fn new(cpu: Cpu) -> Pipeline {
        Pipeline::with_config(cpu, PipelineConfig::default())
    }

    /// Wraps `cpu` with explicit timing parameters.
    #[must_use]
    pub fn with_config(cpu: Cpu, cfg: PipelineConfig) -> Pipeline {
        Pipeline {
            cpu,
            cfg,
            last_issue: 0,
            prev_load_dest: None,
            pending_redirect: false,
            report: PipelineReport::default(),
        }
    }

    /// The wrapped CPU.
    #[must_use]
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The wrapped CPU, mutably (for the OS syscall layer).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// The timing report accumulated so far. `cycles` includes pipeline
    /// drain for everything already retired.
    #[must_use]
    pub fn report(&self) -> PipelineReport {
        let mut r = self.report.clone();
        r.cycles = self.last_issue + DEPTH_TO_RETIRE;
        r
    }

    /// Executes one instruction, accounting its cycles.
    ///
    /// # Errors
    ///
    /// Exactly the conditions of [`Cpu::step`]; on a security exception the
    /// report's [`PipelineReport::detection`] records the stage placement
    /// (ID/EX for jumps, EX/MEM for loads/stores) and the retirement cycle at
    /// which the exception was architecturally raised.
    pub fn step(&mut self) -> Result<StepEvent, CpuException> {
        // Pre-decode to model hazards (fetch faults surface via cpu.step()).
        let peek = self
            .cpu
            .mem()
            .fetch_u32(self.cpu.pc())
            .ok()
            .and_then(|w| Instr::decode(w).ok());

        let mut issue = self.last_issue + 1;
        if self.pending_redirect {
            issue += self.cfg.control_penalty;
            self.report.control_flushes += 1;
            self.pending_redirect = false;
        }
        if let (Some(dest), Some(instr)) = (self.prev_load_dest, peek) {
            if reads_register(&instr, dest) {
                issue += self.cfg.load_use_stall;
                self.report.load_use_stalls += 1;
            }
        }

        let pc_before = self.cpu.pc();
        let result = self.cpu.step();
        self.last_issue = issue;

        match result {
            Ok(event) => {
                self.report.instructions += 1;
                let executed = *self
                    .cpu
                    .recent_trace()
                    .last()
                    .expect("step retired an instruction");
                self.prev_load_dest = match executed.1 {
                    Instr::Load { rt, .. } => Some(rt),
                    _ => None,
                };
                self.pending_redirect = self.cpu.pc() != pc_before.wrapping_add(4);
                Ok(event)
            }
            Err(CpuException::Security(alert)) => {
                let marked_after = match alert.instr {
                    Instr::JumpReg { .. } | Instr::JumpAndLinkReg { .. } => Stage::Decode,
                    _ => Stage::Execute,
                };
                let marked_cycle = issue
                    + match marked_after {
                        Stage::Decode => 1,
                        _ => 2,
                    };
                self.report.detection = Some(PipelineDetection {
                    alert,
                    marked_after,
                    marked_cycle,
                    exception_cycle: issue + DEPTH_TO_RETIRE,
                });
                Err(CpuException::Security(alert))
            }
            Err(other) => Err(other),
        }
    }
}

impl crate::Steppable for Pipeline {
    fn step(&mut self) -> Result<StepEvent, CpuException> {
        Pipeline::step(self)
    }

    fn cpu(&self) -> &Cpu {
        Pipeline::cpu(self)
    }

    fn cpu_mut(&mut self) -> &mut Cpu {
        Pipeline::cpu_mut(self)
    }
}

/// Whether `instr` reads `reg` as a source operand.
fn reads_register(instr: &Instr, reg: ptaint_isa::Reg) -> bool {
    if reg.is_zero() {
        return false;
    }
    match *instr {
        Instr::RAlu { rs, rt, .. }
        | Instr::MulDiv { rs, rt, .. }
        | Instr::Branch { rs, rt, .. }
        | Instr::ShiftV { rs, rt, .. } => rs == reg || rt == reg,
        Instr::IAlu { rs, .. }
        | Instr::BranchZ { rs, .. }
        | Instr::JumpReg { rs }
        | Instr::JumpAndLinkReg { rs, .. }
        | Instr::MoveToHi { rs }
        | Instr::MoveToLo { rs } => rs == reg,
        Instr::Shift { rt, .. } | Instr::Load { base: rt, .. } if rt == reg => true,
        Instr::Load { base, .. } => base == reg,
        Instr::Store { rt, base, .. } => rt == reg || base == reg,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetectionPolicy;
    use ptaint_asm::assemble;
    use ptaint_isa::Reg;
    use ptaint_mem::{MemorySystem, WordTaint};

    fn boot(src: &str) -> Pipeline {
        let image = assemble(src).unwrap();
        let mut mem = MemorySystem::flat();
        for (i, &w) in image.text.iter().enumerate() {
            mem.write_u32(image.text_base + 4 * i as u32, w, WordTaint::CLEAN)
                .unwrap();
        }
        mem.write_bytes(image.data_base, &image.data, false)
            .unwrap();
        let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
        cpu.set_pc(image.entry);
        Pipeline::new(cpu)
    }

    fn run(p: &mut Pipeline, limit: u64) -> Result<(), CpuException> {
        for _ in 0..limit {
            if let StepEvent::BreakTrap(_) = p.step()? {
                return Ok(());
            }
        }
        panic!("did not finish");
    }

    #[test]
    fn straight_line_code_is_one_ipc_plus_drain() {
        let mut p = boot("main: li $t0,1\nli $t1,2\nli $t2,3\nbreak 0");
        run(&mut p, 10).unwrap();
        let r = p.report();
        assert_eq!(r.instructions, 4);
        // 4 issues + 4 drain cycles.
        assert_eq!(r.cycles, 8);
        assert_eq!(r.load_use_stalls, 0);
        assert_eq!(r.control_flushes, 0);
        assert!(r.ipc() > 0.4);
    }

    #[test]
    fn load_use_hazard_stalls_one_cycle() {
        let mut p = boot(
            ".data
v:      .word 7
        .text
main:   la $t0, v
        lw $t1, 0($t0)
        addu $t2, $t1, $t1   # consumes the load result immediately
        break 0",
        );
        run(&mut p, 10).unwrap();
        assert_eq!(p.report().load_use_stalls, 1);
    }

    #[test]
    fn independent_instruction_after_load_does_not_stall() {
        let mut p = boot(
            ".data
v:      .word 7
        .text
main:   la $t0, v
        lw $t1, 0($t0)
        addu $t2, $t3, $t3
        break 0",
        );
        run(&mut p, 10).unwrap();
        assert_eq!(p.report().load_use_stalls, 0);
    }

    #[test]
    fn taken_branches_pay_control_penalty() {
        let mut p = boot(
            "main: b skip
        nop
skip:   break 0",
        );
        run(&mut p, 10).unwrap();
        let r = p.report();
        assert_eq!(r.control_flushes, 1);
        // b (1) + penalty(2) + break(1) + drain(4)
        assert_eq!(r.cycles, 8);
    }

    #[test]
    fn untaken_branch_costs_nothing_extra() {
        let mut p = boot(
            "main: bne $zero, $zero, away
        break 0
away:   break 1",
        );
        run(&mut p, 10).unwrap();
        assert_eq!(p.report().control_flushes, 0);
    }

    #[test]
    fn jump_detection_marks_at_id_ex_and_raises_at_retire() {
        let mut p = boot("main: jr $t0");
        p.cpu_mut()
            .regs_mut()
            .set(Reg::T0, 0x6161_6161, WordTaint::ALL);
        let err = p.step().unwrap_err();
        assert!(matches!(err, CpuException::Security(_)));
        let det = p.report().detection.unwrap();
        assert_eq!(det.marked_after, Stage::Decode);
        assert!(det.exception_cycle > det.marked_cycle);
        assert_eq!(det.exception_cycle - det.marked_cycle, 3);
    }

    #[test]
    fn load_detection_marks_at_ex_mem_and_raises_at_retire() {
        let mut p = boot("main: lw $t1, 0($t0)");
        p.cpu_mut()
            .regs_mut()
            .set(Reg::T0, 0x6161_6161, WordTaint::ALL);
        let err = p.step().unwrap_err();
        assert!(matches!(err, CpuException::Security(_)));
        let det = p.report().detection.unwrap();
        assert_eq!(det.marked_after, Stage::Execute);
        assert_eq!(det.exception_cycle - det.marked_cycle, 2);
        assert_eq!(det.alert.pointer, 0x6161_6161);
    }

    #[test]
    fn function_calls_flush_like_jumps() {
        let mut p = boot(
            "main: jal f
        break 0
f:      jr $ra",
        );
        run(&mut p, 10).unwrap();
        // jal redirect + jr redirect.
        assert_eq!(p.report().control_flushes, 2);
    }
}
