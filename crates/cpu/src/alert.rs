//! Detection policies and security alerts.

use std::fmt;

use ptaint_isa::Instr;
use ptaint_mem::WordTaint;
use ptaint_trace::{json, ToJson};

/// Which pointer-taintedness checks the processor performs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum DetectionPolicy {
    /// No checks — the unprotected baseline. Attacks succeed (or crash the
    /// process through memory faults).
    Off,
    /// Control-data protection only: alert when a *register-indirect jump*
    /// (`jr`/`jalr`) targets a tainted word. This models the control-flow
    /// integrity baselines the paper compares against (Minos, Secure Program
    /// Execution): identical taint machinery, but taintedness of *data*
    /// pointers is not checked.
    ControlOnly,
    /// Full pointer-taintedness detection (the paper's proposal): alert when
    /// any tainted word is dereferenced — as a load/store address *or* as a
    /// register-jump target.
    #[default]
    PointerTaintedness,
}

impl DetectionPolicy {
    /// Whether load/store address words are checked under this policy.
    #[must_use]
    pub const fn checks_data_pointers(self) -> bool {
        matches!(self, DetectionPolicy::PointerTaintedness)
    }

    /// Whether register-jump targets are checked under this policy.
    #[must_use]
    pub const fn checks_jump_pointers(self) -> bool {
        !matches!(self, DetectionPolicy::Off)
    }

    /// Short display name used in experiment tables.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            DetectionPolicy::Off => "off",
            DetectionPolicy::ControlOnly => "control-only",
            DetectionPolicy::PointerTaintedness => "ptaint",
        }
    }
}

impl fmt::Display for DetectionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which detector fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertKind {
    /// The load/store detector (after EX/MEM): a tainted word was used as a
    /// data address.
    DataPointer,
    /// The jump detector (after ID/EX): a tainted word was used as a
    /// `jr`/`jalr` target.
    JumpPointer,
    /// A programmer-annotated memory region became tainted — the paper's
    /// §5.3 extension for reducing false negatives at the cost of
    /// transparency (see [`Cpu::add_taint_watch`](crate::Cpu::add_taint_watch)).
    AnnotationTainted,
}

impl AlertKind {
    /// The kind's display string, available as a `&'static str` so trace
    /// events can carry it without allocating.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            AlertKind::DataPointer => "tainted data pointer dereference",
            AlertKind::JumpPointer => "tainted jump target",
            AlertKind::AnnotationTainted => "annotated data became tainted",
        }
    }
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A pointer-taintedness security exception, the paper's detection event.
///
/// Its [`Display`](fmt::Display) form matches the paper's alert transcripts,
/// e.g. Table 2's `44d7b0: sw $21,0($3)  $3=0x1002bc20`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecurityAlert {
    /// Address of the offending instruction.
    pub pc: u32,
    /// The offending instruction.
    pub instr: Instr,
    /// Which detector fired.
    pub kind: AlertKind,
    /// The register holding the tainted pointer (base register of a
    /// load/store, or the jump target register).
    pub pointer_reg: ptaint_isa::Reg,
    /// The tainted pointer value that was about to be dereferenced.
    pub pointer: u32,
    /// The taint bits of the pointer word.
    pub taint: WordTaint,
}

impl fmt::Display for SecurityAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind == AlertKind::AnnotationTainted {
            return write!(
                f,
                "{:x}: {}  annotated byte at {:#010x} became tainted",
                self.pc, self.instr, self.pointer
            );
        }
        write!(
            f,
            "{:x}: {}  {}={:#010x} [{}]",
            self.pc, self.instr, self.pointer_reg, self.pointer, self.taint
        )
    }
}

impl ToJson for DetectionPolicy {
    fn to_json(&self) -> String {
        json::escape(self.name())
    }
}

impl ToJson for SecurityAlert {
    fn to_json(&self) -> String {
        format!(
            "{{\"pc\":\"0x{:x}\",\"instr\":{},\"kind\":{},\"pointer_reg\":{},\"pointer\":\"0x{:x}\",\"taint\":{}}}",
            self.pc,
            json::escape(&self.instr.to_string()),
            json::escape(self.kind.name()),
            json::escape(&self.pointer_reg.to_string()),
            self.pointer,
            json::escape(&self.taint.to_string()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_isa::{MemWidth, Reg};

    #[test]
    fn policy_check_matrix() {
        use DetectionPolicy::*;
        assert!(!Off.checks_data_pointers() && !Off.checks_jump_pointers());
        assert!(!ControlOnly.checks_data_pointers() && ControlOnly.checks_jump_pointers());
        assert!(
            PointerTaintedness.checks_data_pointers() && PointerTaintedness.checks_jump_pointers()
        );
        assert_eq!(DetectionPolicy::default(), PointerTaintedness);
    }

    #[test]
    fn alert_display_matches_paper_style() {
        let alert = SecurityAlert {
            pc: 0x44d7b0,
            instr: Instr::Store {
                width: MemWidth::Word,
                rt: Reg::new(21),
                base: Reg::new(3),
                offset: 0,
            },
            kind: AlertKind::DataPointer,
            pointer_reg: Reg::new(3),
            pointer: 0x1002_bc20,
            taint: WordTaint::ALL,
        };
        assert_eq!(
            alert.to_string(),
            "44d7b0: sw $21,0($3)  $3=0x1002bc20 [TTTT]"
        );
    }

    #[test]
    fn policy_names() {
        assert_eq!(DetectionPolicy::Off.to_string(), "off");
        assert_eq!(DetectionPolicy::ControlOnly.to_string(), "control-only");
        assert_eq!(DetectionPolicy::PointerTaintedness.to_string(), "ptaint");
    }
}
