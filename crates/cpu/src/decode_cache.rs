//! Per-page decode cache for the predecoded execution engine.
//!
//! On a miss the engine predecodes the straight-line block from the missing
//! PC to the end of its text page ([`DecodeCache::fill_block`]) and then
//! dispatches from the cache until the block is left or invalidated. A slot
//! holding `None` (never predecoded, or an undecodable word) is *not* an
//! error: the engine falls back to the authoritative fetch+decode path,
//! which reproduces the interpreter's exact faults. Coherence with
//! self-modifying code comes from the memory system's code-page watches:
//! the CPU drains dirty pages and calls [`DecodeCache::invalidate`] before
//! consulting the cache.

use std::collections::{HashMap, HashSet};

use ptaint_isa::{DecodedInsn, PAGE_SIZE};
use ptaint_mem::TaintedMemory;

/// Instruction slots per page (one per 4-aligned word).
const SLOTS: usize = (PAGE_SIZE / 4) as usize;

/// One `u64` of proven-clean bits per 64 slots.
const PROVEN_WORDS: usize = SLOTS / 64;

/// One predecoded text page.
struct DecodedPage {
    slots: Box<[Option<DecodedInsn>; SLOTS]>,
    /// One bit per slot: the static analyzer proved this instruction's
    /// pointer check can never fire, so the engine may skip it.
    proven: Box<[u64; PROVEN_WORDS]>,
}

impl DecodedPage {
    fn new() -> DecodedPage {
        DecodedPage {
            slots: Box::new([None; SLOTS]),
            proven: Box::new([0; PROVEN_WORDS]),
        }
    }

    fn clear(&mut self) {
        self.slots.fill(None);
        self.proven.fill(0);
    }

    #[inline]
    fn is_proven(&self, slot: usize) -> bool {
        self.proven[slot / 64] >> (slot % 64) & 1 != 0
    }

    fn set_proven(&mut self, slot: usize) {
        self.proven[slot / 64] |= 1 << (slot % 64);
    }
}

/// Maps text pages to predecoded slot arrays.
///
/// A one-entry "last page" shortcut keeps the hot loop free of hash lookups
/// while execution stays within one page; invalidated slot arrays go on a
/// free list and are reused by later fills.
pub(crate) struct DecodeCache {
    index: HashMap<u32, usize>,
    pages: Vec<DecodedPage>,
    free: Vec<usize>,
    last: Option<(u32, usize)>,
    /// Master proven-clean set installed by the static analyzer; consulted
    /// at fill time to stamp per-slot bits. Dropped wholesale on the first
    /// invalidation (self-modifying code makes the static proof stale).
    proven: HashSet<u32>,
}

impl DecodeCache {
    pub(crate) fn new() -> DecodeCache {
        DecodeCache {
            index: HashMap::new(),
            pages: Vec::new(),
            free: Vec::new(),
            last: None,
            proven: HashSet::new(),
        }
    }

    /// The fork-side decode cache: **rebuilt on demand**, not shared.
    ///
    /// Decoded pages are cheap to refill (one linear predecode per text
    /// page), but the proven-clean machinery is not fork-safe to share:
    /// `invalidate` drops the *whole* proven set, and a shared set would let
    /// one timeline's self-modifying store revoke (or, worse, fail to
    /// revoke) proofs in another. So a fork starts with zero decoded pages
    /// and a private clone of the master proven set exactly as the analyzer
    /// installed it at boot — the same state a fresh boot produces — and
    /// proofs can never survive an invalidation across the fork boundary
    /// because no proof state is shared at all.
    pub(crate) fn fork_rebuild(&self) -> DecodeCache {
        DecodeCache {
            index: HashMap::new(),
            pages: Vec::new(),
            free: Vec::new(),
            last: None,
            proven: self.proven.clone(),
        }
    }

    /// Installs the analyzer's proven-clean set. Cached pages are dropped
    /// so the next fill stamps the per-slot bits; callers install at boot,
    /// before any execution, where the cache is empty anyway.
    pub(crate) fn install_proven(&mut self, pcs: impl IntoIterator<Item = u32>) {
        // Drop cached pages first: `invalidate` wipes the proven set (its
        // self-modifying-code contract), so install after.
        let pages: Vec<u32> = self.index.keys().copied().collect();
        for page in pages {
            self.invalidate(page);
        }
        self.proven = pcs.into_iter().collect();
    }

    /// Forgets every proven-clean bit — master set and per-page stamps.
    /// Called when self-modifying code makes the static analysis stale.
    pub(crate) fn clear_proven(&mut self) {
        if self.proven.is_empty() {
            return;
        }
        self.proven.clear();
        for page in &mut self.pages {
            page.proven.fill(0);
        }
    }

    /// Whether a proven-clean set is installed (and not yet dropped).
    pub(crate) fn has_proven(&self) -> bool {
        !self.proven.is_empty()
    }

    /// The cached decode at `pc`, if this word has been predecoded, and
    /// whether its pointer check is proven elidable. Unaligned PCs always
    /// miss, so the fetch path reproduces the exact alignment fault.
    #[inline]
    pub(crate) fn lookup(&mut self, pc: u32) -> Option<(DecodedInsn, bool)> {
        if pc & 3 != 0 {
            return None;
        }
        let page = pc / PAGE_SIZE;
        let idx = match self.last {
            Some((p, idx)) if p == page => idx,
            _ => {
                let idx = *self.index.get(&page)?;
                self.last = Some((page, idx));
                idx
            }
        };
        let slot = ((pc % PAGE_SIZE) / 4) as usize;
        let p = &self.pages[idx];
        p.slots[slot].map(|d| (d, p.is_proven(slot)))
    }

    /// Predecodes the straight-line block starting at the 4-aligned `pc`:
    /// every word up to the end of its page, stopping early at the first
    /// undecodable word or at a slot an earlier fill already populated.
    /// Words are read from main memory directly (matching fetch semantics:
    /// no cache traffic, unmapped words read as zero and predecode to
    /// `nop`).
    pub(crate) fn fill_block(&mut self, pc: u32, mem: &TaintedMemory) {
        debug_assert_eq!(pc & 3, 0);
        let page = pc / PAGE_SIZE;
        let idx = match self.index.get(&page) {
            Some(&idx) => idx,
            None => {
                let idx = self.free.pop().unwrap_or_else(|| {
                    self.pages.push(DecodedPage::new());
                    self.pages.len() - 1
                });
                self.index.insert(page, idx);
                idx
            }
        };
        let base = pc - pc % PAGE_SIZE;
        for slot in ((pc % PAGE_SIZE) / 4) as usize..SLOTS {
            if self.pages[idx].slots[slot].is_some() {
                break;
            }
            let addr = base + 4 * slot as u32;
            let Ok((word, _)) = mem.read_u32(addr) else {
                break;
            };
            let Ok(d) = DecodedInsn::predecode(addr, word) else {
                break;
            };
            self.pages[idx].slots[slot] = Some(d);
            if !self.proven.is_empty() && self.proven.contains(&addr) {
                self.pages[idx].set_proven(slot);
            }
        }
    }

    /// Drops the cached page, returning whether anything was cached for it.
    /// Any invalidation also drops the whole proven-clean set: a store into
    /// text is self-modifying code, and the static analysis no longer
    /// describes the program that is running.
    pub(crate) fn invalidate(&mut self, page: u32) -> bool {
        self.clear_proven();
        let Some(idx) = self.index.remove(&page) else {
            return false;
        };
        self.pages[idx].clear();
        self.free.push(idx);
        if matches!(self.last, Some((p, _)) if p == page) {
            self.last = None;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_isa::{IAluOp, Instr, Reg, TEXT_BASE};
    use ptaint_mem::WordTaint;

    fn addiu(imm: i16) -> Instr {
        Instr::IAlu {
            op: IAluOp::Addiu,
            rt: Reg::new(8),
            rs: Reg::new(0),
            imm,
        }
    }

    fn text_with(words: &[u32]) -> TaintedMemory {
        let mut mem = TaintedMemory::new();
        for (i, &w) in words.iter().enumerate() {
            mem.write_u32(TEXT_BASE + 4 * i as u32, w, WordTaint::CLEAN)
                .unwrap();
        }
        mem
    }

    #[test]
    fn fill_then_lookup_roundtrips_and_extends_to_unmapped_nops() {
        let mem = text_with(&[addiu(1).encode(), addiu(2).encode()]);
        let mut cache = DecodeCache::new();
        assert_eq!(cache.lookup(TEXT_BASE), None);
        cache.fill_block(TEXT_BASE, &mem);
        assert_eq!(cache.lookup(TEXT_BASE).unwrap().0.instr, addiu(1));
        assert_eq!(cache.lookup(TEXT_BASE + 4).unwrap().0.instr, addiu(2));
        // Unmapped words beyond the program read as zero -> nop, like fetch.
        assert_eq!(cache.lookup(TEXT_BASE + 8).unwrap().0.instr, Instr::NOP);
        // Unaligned lookups always miss.
        assert_eq!(cache.lookup(TEXT_BASE + 2), None);
        // No proven set installed: nothing is elidable.
        assert!(!cache.lookup(TEXT_BASE).unwrap().1);
    }

    #[test]
    fn fill_stops_at_undecodable_words() {
        let mem = text_with(&[addiu(1).encode(), 0xffff_ffff, addiu(3).encode()]);
        assert!(Instr::decode(0xffff_ffff).is_err());
        let mut cache = DecodeCache::new();
        cache.fill_block(TEXT_BASE, &mem);
        assert!(cache.lookup(TEXT_BASE).is_some());
        assert_eq!(cache.lookup(TEXT_BASE + 4), None, "bad word left uncached");
        // A later fill starting past the bad word predecodes the rest.
        cache.fill_block(TEXT_BASE + 8, &mem);
        assert_eq!(cache.lookup(TEXT_BASE + 8).unwrap().0.instr, addiu(3));
    }

    #[test]
    fn invalidate_drops_the_page_and_allows_refill() {
        let mem = text_with(&[addiu(1).encode()]);
        let page = TEXT_BASE / PAGE_SIZE;
        let mut cache = DecodeCache::new();
        assert!(!cache.invalidate(page), "nothing cached yet");
        cache.fill_block(TEXT_BASE, &mem);
        assert!(cache.invalidate(page));
        assert_eq!(cache.lookup(TEXT_BASE), None);
        // Refill (reusing the freed slot array) sees fresh contents.
        let patched = text_with(&[addiu(7).encode()]);
        cache.fill_block(TEXT_BASE, &patched);
        assert_eq!(cache.lookup(TEXT_BASE).unwrap().0.instr, addiu(7));
    }

    #[test]
    fn pages_are_independent() {
        let mut mem = text_with(&[addiu(1).encode()]);
        mem.write_u32(TEXT_BASE + PAGE_SIZE, addiu(2).encode(), WordTaint::CLEAN)
            .unwrap();
        let mut cache = DecodeCache::new();
        cache.fill_block(TEXT_BASE, &mem);
        cache.fill_block(TEXT_BASE + PAGE_SIZE, &mem);
        assert!(cache.invalidate(TEXT_BASE / PAGE_SIZE));
        assert_eq!(cache.lookup(TEXT_BASE), None);
        assert_eq!(
            cache.lookup(TEXT_BASE + PAGE_SIZE).unwrap().0.instr,
            addiu(2),
            "sibling page survives the invalidation"
        );
    }

    #[test]
    fn proven_bits_are_stamped_at_fill_time() {
        let mem = text_with(&[addiu(1).encode(), addiu(2).encode(), addiu(3).encode()]);
        let mut cache = DecodeCache::new();
        cache.install_proven([TEXT_BASE, TEXT_BASE + 8]);
        assert!(cache.has_proven());
        cache.fill_block(TEXT_BASE, &mem);
        assert!(cache.lookup(TEXT_BASE).unwrap().1);
        assert!(!cache.lookup(TEXT_BASE + 4).unwrap().1, "not in the set");
        assert!(cache.lookup(TEXT_BASE + 8).unwrap().1);
    }

    #[test]
    fn any_invalidation_drops_every_proven_bit() {
        // Self-modifying code anywhere makes the static analysis stale, so
        // one invalidation must clear proven bits on *all* pages — including
        // pages the store never touched — and refills must not re-prove.
        let mut mem = text_with(&[addiu(1).encode()]);
        mem.write_u32(TEXT_BASE + PAGE_SIZE, addiu(2).encode(), WordTaint::CLEAN)
            .unwrap();
        let mut cache = DecodeCache::new();
        cache.install_proven([TEXT_BASE, TEXT_BASE + PAGE_SIZE]);
        cache.fill_block(TEXT_BASE, &mem);
        cache.fill_block(TEXT_BASE + PAGE_SIZE, &mem);
        assert!(cache.lookup(TEXT_BASE).unwrap().1);
        assert!(cache.lookup(TEXT_BASE + PAGE_SIZE).unwrap().1);

        assert!(cache.invalidate(TEXT_BASE / PAGE_SIZE));
        assert!(!cache.has_proven());
        // The sibling page stays decoded but loses its proven stamp.
        let (d, proven) = cache.lookup(TEXT_BASE + PAGE_SIZE).unwrap();
        assert_eq!(d.instr, addiu(2));
        assert!(!proven);
        // Refilling the invalidated page never re-proves it.
        cache.fill_block(TEXT_BASE, &mem);
        assert!(!cache.lookup(TEXT_BASE).unwrap().1);
    }

    #[test]
    fn install_proven_resets_already_filled_pages() {
        let mem = text_with(&[addiu(1).encode()]);
        let mut cache = DecodeCache::new();
        cache.fill_block(TEXT_BASE, &mem);
        cache.install_proven([TEXT_BASE]);
        // The pre-install fill was dropped; the refill stamps the bit.
        assert_eq!(cache.lookup(TEXT_BASE), None);
        cache.fill_block(TEXT_BASE, &mem);
        assert!(cache.lookup(TEXT_BASE).unwrap().1);
    }
}
