//! Per-page decode cache for the predecoded execution engine.
//!
//! On a miss the engine predecodes the straight-line block from the missing
//! PC to the end of its text page ([`DecodeCache::fill_block`]) and then
//! dispatches from the cache until the block is left or invalidated. A slot
//! holding `None` (never predecoded, or an undecodable word) is *not* an
//! error: the engine falls back to the authoritative fetch+decode path,
//! which reproduces the interpreter's exact faults. Coherence with
//! self-modifying code comes from the memory system's code-page watches:
//! the CPU drains dirty pages and calls [`DecodeCache::invalidate`] before
//! consulting the cache.

use std::collections::HashMap;

use ptaint_isa::{DecodedInsn, PAGE_SIZE};
use ptaint_mem::TaintedMemory;

/// Instruction slots per page (one per 4-aligned word).
const SLOTS: usize = (PAGE_SIZE / 4) as usize;

/// One predecoded text page.
struct DecodedPage {
    slots: Box<[Option<DecodedInsn>; SLOTS]>,
}

impl DecodedPage {
    fn new() -> DecodedPage {
        DecodedPage {
            slots: Box::new([None; SLOTS]),
        }
    }

    fn clear(&mut self) {
        self.slots.fill(None);
    }
}

/// Maps text pages to predecoded slot arrays.
///
/// A one-entry "last page" shortcut keeps the hot loop free of hash lookups
/// while execution stays within one page; invalidated slot arrays go on a
/// free list and are reused by later fills.
pub(crate) struct DecodeCache {
    index: HashMap<u32, usize>,
    pages: Vec<DecodedPage>,
    free: Vec<usize>,
    last: Option<(u32, usize)>,
}

impl DecodeCache {
    pub(crate) fn new() -> DecodeCache {
        DecodeCache {
            index: HashMap::new(),
            pages: Vec::new(),
            free: Vec::new(),
            last: None,
        }
    }

    /// The cached decode at `pc`, if this word has been predecoded.
    /// Unaligned PCs always miss, so the fetch path reproduces the exact
    /// alignment fault.
    #[inline]
    pub(crate) fn lookup(&mut self, pc: u32) -> Option<DecodedInsn> {
        if pc & 3 != 0 {
            return None;
        }
        let page = pc / PAGE_SIZE;
        let idx = match self.last {
            Some((p, idx)) if p == page => idx,
            _ => {
                let idx = *self.index.get(&page)?;
                self.last = Some((page, idx));
                idx
            }
        };
        self.pages[idx].slots[((pc % PAGE_SIZE) / 4) as usize]
    }

    /// Predecodes the straight-line block starting at the 4-aligned `pc`:
    /// every word up to the end of its page, stopping early at the first
    /// undecodable word or at a slot an earlier fill already populated.
    /// Words are read from main memory directly (matching fetch semantics:
    /// no cache traffic, unmapped words read as zero and predecode to
    /// `nop`).
    pub(crate) fn fill_block(&mut self, pc: u32, mem: &TaintedMemory) {
        debug_assert_eq!(pc & 3, 0);
        let page = pc / PAGE_SIZE;
        let idx = match self.index.get(&page) {
            Some(&idx) => idx,
            None => {
                let idx = self.free.pop().unwrap_or_else(|| {
                    self.pages.push(DecodedPage::new());
                    self.pages.len() - 1
                });
                self.index.insert(page, idx);
                idx
            }
        };
        let base = pc - pc % PAGE_SIZE;
        for slot in ((pc % PAGE_SIZE) / 4) as usize..SLOTS {
            if self.pages[idx].slots[slot].is_some() {
                break;
            }
            let addr = base + 4 * slot as u32;
            let Ok((word, _)) = mem.read_u32(addr) else {
                break;
            };
            let Ok(d) = DecodedInsn::predecode(addr, word) else {
                break;
            };
            self.pages[idx].slots[slot] = Some(d);
        }
    }

    /// Drops the cached page, returning whether anything was cached for it.
    pub(crate) fn invalidate(&mut self, page: u32) -> bool {
        let Some(idx) = self.index.remove(&page) else {
            return false;
        };
        self.pages[idx].clear();
        self.free.push(idx);
        if matches!(self.last, Some((p, _)) if p == page) {
            self.last = None;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_isa::{IAluOp, Instr, Reg, TEXT_BASE};
    use ptaint_mem::WordTaint;

    fn addiu(imm: i16) -> Instr {
        Instr::IAlu {
            op: IAluOp::Addiu,
            rt: Reg::new(8),
            rs: Reg::new(0),
            imm,
        }
    }

    fn text_with(words: &[u32]) -> TaintedMemory {
        let mut mem = TaintedMemory::new();
        for (i, &w) in words.iter().enumerate() {
            mem.write_u32(TEXT_BASE + 4 * i as u32, w, WordTaint::CLEAN)
                .unwrap();
        }
        mem
    }

    #[test]
    fn fill_then_lookup_roundtrips_and_extends_to_unmapped_nops() {
        let mem = text_with(&[addiu(1).encode(), addiu(2).encode()]);
        let mut cache = DecodeCache::new();
        assert_eq!(cache.lookup(TEXT_BASE), None);
        cache.fill_block(TEXT_BASE, &mem);
        assert_eq!(cache.lookup(TEXT_BASE).unwrap().instr, addiu(1));
        assert_eq!(cache.lookup(TEXT_BASE + 4).unwrap().instr, addiu(2));
        // Unmapped words beyond the program read as zero -> nop, like fetch.
        assert_eq!(cache.lookup(TEXT_BASE + 8).unwrap().instr, Instr::NOP);
        // Unaligned lookups always miss.
        assert_eq!(cache.lookup(TEXT_BASE + 2), None);
    }

    #[test]
    fn fill_stops_at_undecodable_words() {
        let mem = text_with(&[addiu(1).encode(), 0xffff_ffff, addiu(3).encode()]);
        assert!(Instr::decode(0xffff_ffff).is_err());
        let mut cache = DecodeCache::new();
        cache.fill_block(TEXT_BASE, &mem);
        assert!(cache.lookup(TEXT_BASE).is_some());
        assert_eq!(cache.lookup(TEXT_BASE + 4), None, "bad word left uncached");
        // A later fill starting past the bad word predecodes the rest.
        cache.fill_block(TEXT_BASE + 8, &mem);
        assert_eq!(cache.lookup(TEXT_BASE + 8).unwrap().instr, addiu(3));
    }

    #[test]
    fn invalidate_drops_the_page_and_allows_refill() {
        let mem = text_with(&[addiu(1).encode()]);
        let page = TEXT_BASE / PAGE_SIZE;
        let mut cache = DecodeCache::new();
        assert!(!cache.invalidate(page), "nothing cached yet");
        cache.fill_block(TEXT_BASE, &mem);
        assert!(cache.invalidate(page));
        assert_eq!(cache.lookup(TEXT_BASE), None);
        // Refill (reusing the freed slot array) sees fresh contents.
        let patched = text_with(&[addiu(7).encode()]);
        cache.fill_block(TEXT_BASE, &patched);
        assert_eq!(cache.lookup(TEXT_BASE).unwrap().instr, addiu(7));
    }

    #[test]
    fn pages_are_independent() {
        let mut mem = text_with(&[addiu(1).encode()]);
        mem.write_u32(TEXT_BASE + PAGE_SIZE, addiu(2).encode(), WordTaint::CLEAN)
            .unwrap();
        let mut cache = DecodeCache::new();
        cache.fill_block(TEXT_BASE, &mem);
        cache.fill_block(TEXT_BASE + PAGE_SIZE, &mem);
        assert!(cache.invalidate(TEXT_BASE / PAGE_SIZE));
        assert_eq!(cache.lookup(TEXT_BASE), None);
        assert_eq!(
            cache.lookup(TEXT_BASE + PAGE_SIZE).unwrap().instr,
            addiu(2),
            "sibling page survives the invalidation"
        );
    }
}
