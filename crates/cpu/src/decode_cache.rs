//! Per-page decode cache for the predecoded execution engine.
//!
//! On a miss the engine predecodes the straight-line block from the missing
//! PC to the end of its text page ([`DecodeCache::fill_block`]) and then
//! dispatches from the cache until the block is left or invalidated. A slot
//! holding `None` (never predecoded, or an undecodable word) is *not* an
//! error: the engine falls back to the authoritative fetch+decode path,
//! which reproduces the interpreter's exact faults. Coherence with
//! self-modifying code comes from the memory system's code-page watches:
//! the CPU drains dirty pages and calls [`DecodeCache::invalidate`] before
//! consulting the cache.

use std::collections::{HashMap, HashSet};

use ptaint_isa::{DecodedInsn, PAGE_SIZE};
use ptaint_mem::TaintedMemory;

/// Instruction slots per page (one per 4-aligned word).
const SLOTS: usize = (PAGE_SIZE / 4) as usize;

/// One `u64` of proven-clean bits per 64 slots.
const PROVEN_WORDS: usize = SLOTS / 64;

/// FNV-1a hash of one filled slot's decoded form. XORed into the page
/// header checksum at fill time so the integrity sweep can recompute and
/// compare without touching authoritative memory.
fn slot_hash(slot: usize, d: &DecodedInsn) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [slot as u32, d.instr.encode(), d.imm, d.target] {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// One predecoded text page.
struct DecodedPage {
    slots: Box<[Option<DecodedInsn>; SLOTS]>,
    /// One bit per slot: the static analyzer proved this instruction's
    /// pointer check can never fire, so the engine may skip it.
    proven: Box<[u64; PROVEN_WORDS]>,
    /// Lockstep replica of `proven`. Every legitimate update writes both
    /// copies; `lookup` cross-checks the word covering a hit, so a single
    /// flipped proven bit yields a detectable mismatch instead of a
    /// silently elided check.
    proven_dup: Box<[u64; PROVEN_WORDS]>,
    /// Page header checksum: XOR of [`slot_hash`] over every filled slot,
    /// maintained incrementally by fills and resets. The periodic
    /// integrity sweep recomputes it from the slots and compares.
    sum: u64,
}

impl DecodedPage {
    fn new() -> DecodedPage {
        DecodedPage {
            slots: Box::new([None; SLOTS]),
            proven: Box::new([0; PROVEN_WORDS]),
            proven_dup: Box::new([0; PROVEN_WORDS]),
            sum: 0,
        }
    }

    fn clear(&mut self) {
        self.slots.fill(None);
        self.proven.fill(0);
        self.proven_dup.fill(0);
        self.sum = 0;
    }

    #[inline]
    fn is_proven(&self, slot: usize) -> bool {
        self.proven[slot / 64] >> (slot % 64) & 1 != 0
    }

    fn set_proven(&mut self, slot: usize) {
        self.proven[slot / 64] |= 1 << (slot % 64);
        self.proven_dup[slot / 64] |= 1 << (slot % 64);
    }

    fn recompute_sum(&self) -> u64 {
        let mut sum = 0;
        for (slot, d) in self.slots.iter().enumerate() {
            if let Some(d) = d {
                sum ^= slot_hash(slot, d);
            }
        }
        sum
    }
}

/// Maps text pages to predecoded slot arrays.
///
/// A one-entry "last page" shortcut keeps the hot loop free of hash lookups
/// while execution stays within one page; invalidated slot arrays go on a
/// free list and are reused by later fills.
pub(crate) struct DecodeCache {
    index: HashMap<u32, usize>,
    pages: Vec<DecodedPage>,
    free: Vec<usize>,
    last: Option<(u32, usize)>,
    /// Master proven-clean set installed by the static analyzer; consulted
    /// at fill time to stamp per-slot bits. Dropped wholesale on the first
    /// invalidation (self-modifying code makes the static proof stale).
    proven: HashSet<u32>,
    /// Set when `lookup` catches a proven-bitmap replica mismatch; the CPU
    /// drains it and enters degraded mode.
    compromised: Option<String>,
    /// Round-robin cursor for the deep (slot-checksum) half of the
    /// periodic integrity sweep: one page per sweep, amortized.
    sweep_cursor: usize,
}

impl DecodeCache {
    pub(crate) fn new() -> DecodeCache {
        DecodeCache {
            index: HashMap::new(),
            pages: Vec::new(),
            free: Vec::new(),
            last: None,
            proven: HashSet::new(),
            compromised: None,
            sweep_cursor: 0,
        }
    }

    /// The fork-side decode cache: **rebuilt on demand**, not shared.
    ///
    /// Decoded pages are cheap to refill (one linear predecode per text
    /// page), but the proven-clean machinery is not fork-safe to share:
    /// `invalidate` drops the *whole* proven set, and a shared set would let
    /// one timeline's self-modifying store revoke (or, worse, fail to
    /// revoke) proofs in another. So a fork starts with zero decoded pages
    /// and a private clone of the master proven set exactly as the analyzer
    /// installed it at boot — the same state a fresh boot produces — and
    /// proofs can never survive an invalidation across the fork boundary
    /// because no proof state is shared at all.
    pub(crate) fn fork_rebuild(&self) -> DecodeCache {
        DecodeCache {
            index: HashMap::new(),
            pages: Vec::new(),
            free: Vec::new(),
            last: None,
            proven: self.proven.clone(),
            compromised: None,
            sweep_cursor: 0,
        }
    }

    /// Installs the analyzer's proven-clean set. Cached pages are dropped
    /// so the next fill stamps the per-slot bits; callers install at boot,
    /// before any execution, where the cache is empty anyway.
    pub(crate) fn install_proven(&mut self, pcs: impl IntoIterator<Item = u32>) {
        // Drop cached pages first: `invalidate` wipes the proven set (its
        // self-modifying-code contract), so install after.
        let pages: Vec<u32> = self.index.keys().copied().collect();
        for page in pages {
            self.invalidate(page);
        }
        self.proven = pcs.into_iter().collect();
    }

    /// Forgets every proven-clean bit — master set and per-page stamps.
    /// Called when self-modifying code makes the static analysis stale.
    pub(crate) fn clear_proven(&mut self) {
        if self.proven.is_empty() {
            return;
        }
        self.proven.clear();
        for page in &mut self.pages {
            page.proven.fill(0);
            page.proven_dup.fill(0);
        }
    }

    /// Whether a proven-clean set is installed (and not yet dropped).
    pub(crate) fn has_proven(&self) -> bool {
        !self.proven.is_empty()
    }

    /// The cached decode at `pc`, if this word has been predecoded, and
    /// whether its pointer check is proven elidable. Unaligned PCs always
    /// miss, so the fetch path reproduces the exact alignment fault.
    #[inline]
    pub(crate) fn lookup(&mut self, pc: u32) -> Option<(DecodedInsn, bool)> {
        if pc & 3 != 0 {
            return None;
        }
        let page = pc / PAGE_SIZE;
        let idx = match self.last {
            Some((p, idx)) if p == page => idx,
            _ => {
                let idx = *self.index.get(&page)?;
                self.last = Some((page, idx));
                idx
            }
        };
        let slot = ((pc % PAGE_SIZE) / 4) as usize;
        let p = &self.pages[idx];
        let d = p.slots[slot]?;
        // DMR cross-check: a flipped bit in either proven copy makes the
        // covering words differ. Fail safe (run the check) and flag the
        // cache so the CPU degrades before trusting any further proof.
        if p.proven[slot / 64] != p.proven_dup[slot / 64] {
            self.compromised = Some(format!(
                "proven bitmap replica mismatch on page {:#010x}",
                page * PAGE_SIZE
            ));
            return Some((d, false));
        }
        Some((d, p.is_proven(slot)))
    }

    /// Drains the replica-mismatch flag raised by [`DecodeCache::lookup`].
    pub(crate) fn take_compromised(&mut self) -> Option<String> {
        self.compromised.take()
    }

    /// One step of the periodic integrity check. Always compares every
    /// cached page's proven bitmap against its replica (cheap: a few words
    /// per page); additionally recomputes one page's slot checksum per
    /// call, round-robin, so decoded-slot corruption is caught within a
    /// bounded number of sweeps. Returns a reason on the first mismatch.
    pub(crate) fn verify_sweep(&mut self) -> Option<String> {
        let describe = |index: &HashMap<u32, usize>, idx: usize| {
            index
                .iter()
                .find(|&(_, &i)| i == idx)
                .map_or(0, |(&p, _)| p * PAGE_SIZE)
        };
        for (idx, p) in self.pages.iter().enumerate() {
            if p.proven != p.proven_dup {
                return Some(format!(
                    "proven bitmap replica mismatch on page {:#010x}",
                    describe(&self.index, idx)
                ));
            }
        }
        if !self.pages.is_empty() {
            let idx = self.sweep_cursor % self.pages.len();
            self.sweep_cursor = self.sweep_cursor.wrapping_add(1);
            let p = &self.pages[idx];
            if p.recompute_sum() != p.sum {
                return Some(format!(
                    "decoded slot checksum mismatch on page {:#010x}",
                    describe(&self.index, idx)
                ));
            }
        }
        None
    }

    /// Enters degraded mode: drops every decoded page and every proof
    /// (master set and per-page stamps, both copies). The next fills
    /// re-predecode from authoritative memory — healing slot corruption —
    /// and nothing is ever proven again, so no check is elided.
    pub(crate) fn degrade(&mut self) {
        let pages: Vec<u32> = self.index.keys().copied().collect();
        for page in pages {
            self.invalidate(page);
        }
        self.clear_proven();
        self.compromised = None;
        self.sweep_cursor = 0;
    }

    /// Fault-injection hook: flips one bit in the *primary* proven bitmap
    /// of a cached page, bypassing the replica and the checksum, exactly
    /// as a hardware fault would. Returns a description of the flip, or
    /// `None` when no page is cached (the fault has nothing to land on).
    pub(crate) fn corrupt_proven_bit(&mut self, pick: u64, bit: u64) -> Option<String> {
        let mut pages: Vec<u32> = self.index.keys().copied().collect();
        pages.sort_unstable();
        let page = *pages.get((pick % pages.len().max(1) as u64) as usize)?;
        let idx = self.index[&page];
        let slot = (bit % SLOTS as u64) as usize;
        self.pages[idx].proven[slot / 64] ^= 1 << (slot % 64);
        self.last = None;
        Some(format!(
            "proven bit for {:#010x} flipped",
            page * PAGE_SIZE + 4 * slot as u32
        ))
    }

    /// Fault-injection hook: flips one bit in the pre-extended immediate of
    /// a filled decode slot, bypassing the page checksum. Returns a
    /// description, or `None` when nothing is cached.
    pub(crate) fn corrupt_decode_slot(&mut self, pick: u64, bit: u64) -> Option<String> {
        let mut pages: Vec<u32> = self.index.keys().copied().collect();
        pages.sort_unstable();
        if pages.is_empty() {
            return None;
        }
        let n = pages.len() as u64;
        for off in 0..pages.len() {
            let page = pages[((pick + off as u64) % n) as usize];
            let idx = self.index[&page];
            let filled: Vec<usize> = self.pages[idx]
                .slots
                .iter()
                .enumerate()
                .filter_map(|(s, d)| d.map(|_| s))
                .collect();
            if filled.is_empty() {
                continue;
            }
            let slot = filled[(bit % filled.len() as u64) as usize];
            let pos = ((bit >> 40) % 32) as u32;
            let d = self.pages[idx].slots[slot]
                .as_mut()
                .expect("slot was just seen filled");
            d.imm ^= 1 << pos;
            self.last = None;
            return Some(format!(
                "decoded imm bit {pos} at {:#010x} flipped",
                page * PAGE_SIZE + 4 * slot as u32
            ));
        }
        None
    }

    /// Predecodes the straight-line block starting at the 4-aligned `pc`:
    /// every word up to the end of its page, stopping early at the first
    /// undecodable word or at a slot an earlier fill already populated.
    /// Words are read from main memory directly (matching fetch semantics:
    /// no cache traffic, unmapped words read as zero and predecode to
    /// `nop`).
    pub(crate) fn fill_block(&mut self, pc: u32, mem: &TaintedMemory) {
        debug_assert_eq!(pc & 3, 0);
        let page = pc / PAGE_SIZE;
        let idx = match self.index.get(&page) {
            Some(&idx) => idx,
            None => {
                let idx = self.free.pop().unwrap_or_else(|| {
                    self.pages.push(DecodedPage::new());
                    self.pages.len() - 1
                });
                self.index.insert(page, idx);
                idx
            }
        };
        let base = pc - pc % PAGE_SIZE;
        for slot in ((pc % PAGE_SIZE) / 4) as usize..SLOTS {
            if self.pages[idx].slots[slot].is_some() {
                break;
            }
            let addr = base + 4 * slot as u32;
            let Ok((word, _)) = mem.read_u32(addr) else {
                break;
            };
            let Ok(d) = DecodedInsn::predecode(addr, word) else {
                break;
            };
            self.pages[idx].slots[slot] = Some(d);
            self.pages[idx].sum ^= slot_hash(slot, &d);
            if !self.proven.is_empty() && self.proven.contains(&addr) {
                self.pages[idx].set_proven(slot);
            }
        }
    }

    /// Drops the cached page, returning whether anything was cached for it.
    /// Any invalidation also drops the whole proven-clean set: a store into
    /// text is self-modifying code, and the static analysis no longer
    /// describes the program that is running.
    pub(crate) fn invalidate(&mut self, page: u32) -> bool {
        self.clear_proven();
        let Some(idx) = self.index.remove(&page) else {
            return false;
        };
        self.pages[idx].clear();
        self.free.push(idx);
        if matches!(self.last, Some((p, _)) if p == page) {
            self.last = None;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_isa::{IAluOp, Instr, Reg, TEXT_BASE};
    use ptaint_mem::WordTaint;

    fn addiu(imm: i16) -> Instr {
        Instr::IAlu {
            op: IAluOp::Addiu,
            rt: Reg::new(8),
            rs: Reg::new(0),
            imm,
        }
    }

    fn text_with(words: &[u32]) -> TaintedMemory {
        let mut mem = TaintedMemory::new();
        for (i, &w) in words.iter().enumerate() {
            mem.write_u32(TEXT_BASE + 4 * i as u32, w, WordTaint::CLEAN)
                .unwrap();
        }
        mem
    }

    #[test]
    fn fill_then_lookup_roundtrips_and_extends_to_unmapped_nops() {
        let mem = text_with(&[addiu(1).encode(), addiu(2).encode()]);
        let mut cache = DecodeCache::new();
        assert_eq!(cache.lookup(TEXT_BASE), None);
        cache.fill_block(TEXT_BASE, &mem);
        assert_eq!(cache.lookup(TEXT_BASE).unwrap().0.instr, addiu(1));
        assert_eq!(cache.lookup(TEXT_BASE + 4).unwrap().0.instr, addiu(2));
        // Unmapped words beyond the program read as zero -> nop, like fetch.
        assert_eq!(cache.lookup(TEXT_BASE + 8).unwrap().0.instr, Instr::NOP);
        // Unaligned lookups always miss.
        assert_eq!(cache.lookup(TEXT_BASE + 2), None);
        // No proven set installed: nothing is elidable.
        assert!(!cache.lookup(TEXT_BASE).unwrap().1);
    }

    #[test]
    fn fill_stops_at_undecodable_words() {
        let mem = text_with(&[addiu(1).encode(), 0xffff_ffff, addiu(3).encode()]);
        assert!(Instr::decode(0xffff_ffff).is_err());
        let mut cache = DecodeCache::new();
        cache.fill_block(TEXT_BASE, &mem);
        assert!(cache.lookup(TEXT_BASE).is_some());
        assert_eq!(cache.lookup(TEXT_BASE + 4), None, "bad word left uncached");
        // A later fill starting past the bad word predecodes the rest.
        cache.fill_block(TEXT_BASE + 8, &mem);
        assert_eq!(cache.lookup(TEXT_BASE + 8).unwrap().0.instr, addiu(3));
    }

    #[test]
    fn invalidate_drops_the_page_and_allows_refill() {
        let mem = text_with(&[addiu(1).encode()]);
        let page = TEXT_BASE / PAGE_SIZE;
        let mut cache = DecodeCache::new();
        assert!(!cache.invalidate(page), "nothing cached yet");
        cache.fill_block(TEXT_BASE, &mem);
        assert!(cache.invalidate(page));
        assert_eq!(cache.lookup(TEXT_BASE), None);
        // Refill (reusing the freed slot array) sees fresh contents.
        let patched = text_with(&[addiu(7).encode()]);
        cache.fill_block(TEXT_BASE, &patched);
        assert_eq!(cache.lookup(TEXT_BASE).unwrap().0.instr, addiu(7));
    }

    #[test]
    fn pages_are_independent() {
        let mut mem = text_with(&[addiu(1).encode()]);
        mem.write_u32(TEXT_BASE + PAGE_SIZE, addiu(2).encode(), WordTaint::CLEAN)
            .unwrap();
        let mut cache = DecodeCache::new();
        cache.fill_block(TEXT_BASE, &mem);
        cache.fill_block(TEXT_BASE + PAGE_SIZE, &mem);
        assert!(cache.invalidate(TEXT_BASE / PAGE_SIZE));
        assert_eq!(cache.lookup(TEXT_BASE), None);
        assert_eq!(
            cache.lookup(TEXT_BASE + PAGE_SIZE).unwrap().0.instr,
            addiu(2),
            "sibling page survives the invalidation"
        );
    }

    #[test]
    fn proven_bits_are_stamped_at_fill_time() {
        let mem = text_with(&[addiu(1).encode(), addiu(2).encode(), addiu(3).encode()]);
        let mut cache = DecodeCache::new();
        cache.install_proven([TEXT_BASE, TEXT_BASE + 8]);
        assert!(cache.has_proven());
        cache.fill_block(TEXT_BASE, &mem);
        assert!(cache.lookup(TEXT_BASE).unwrap().1);
        assert!(!cache.lookup(TEXT_BASE + 4).unwrap().1, "not in the set");
        assert!(cache.lookup(TEXT_BASE + 8).unwrap().1);
    }

    #[test]
    fn any_invalidation_drops_every_proven_bit() {
        // Self-modifying code anywhere makes the static analysis stale, so
        // one invalidation must clear proven bits on *all* pages — including
        // pages the store never touched — and refills must not re-prove.
        let mut mem = text_with(&[addiu(1).encode()]);
        mem.write_u32(TEXT_BASE + PAGE_SIZE, addiu(2).encode(), WordTaint::CLEAN)
            .unwrap();
        let mut cache = DecodeCache::new();
        cache.install_proven([TEXT_BASE, TEXT_BASE + PAGE_SIZE]);
        cache.fill_block(TEXT_BASE, &mem);
        cache.fill_block(TEXT_BASE + PAGE_SIZE, &mem);
        assert!(cache.lookup(TEXT_BASE).unwrap().1);
        assert!(cache.lookup(TEXT_BASE + PAGE_SIZE).unwrap().1);

        assert!(cache.invalidate(TEXT_BASE / PAGE_SIZE));
        assert!(!cache.has_proven());
        // The sibling page stays decoded but loses its proven stamp.
        let (d, proven) = cache.lookup(TEXT_BASE + PAGE_SIZE).unwrap();
        assert_eq!(d.instr, addiu(2));
        assert!(!proven);
        // Refilling the invalidated page never re-proves it.
        cache.fill_block(TEXT_BASE, &mem);
        assert!(!cache.lookup(TEXT_BASE).unwrap().1);
    }

    #[test]
    fn a_flipped_proven_bit_never_elides_and_flags_the_cache() {
        let mem = text_with(&[addiu(1).encode(), addiu(2).encode()]);
        let mut cache = DecodeCache::new();
        cache.install_proven([TEXT_BASE]);
        cache.fill_block(TEXT_BASE, &mem);
        assert!(cache.lookup(TEXT_BASE).unwrap().1);
        assert!(cache.take_compromised().is_none());

        // Flip the primary bit covering slot 0: the replica now disagrees,
        // so the lookup fails safe (proven = false) and raises the flag.
        let applied = cache.corrupt_proven_bit(0, 0).unwrap();
        assert!(applied.contains("proven bit"), "{applied}");
        assert!(!cache.lookup(TEXT_BASE).unwrap().1, "mismatch fails safe");
        assert!(cache.take_compromised().is_some());

        // A flip the other way — falsely *proving* an unproven slot — is
        // caught the same way (the covering words still differ).
        let mut cache = DecodeCache::new();
        cache.fill_block(TEXT_BASE, &mem);
        cache.corrupt_proven_bit(0, 1).unwrap();
        assert!(!cache.lookup(TEXT_BASE + 4).unwrap().1);
        assert!(cache.take_compromised().is_some());
    }

    #[test]
    fn the_sweep_catches_replica_and_slot_corruption() {
        let mem = text_with(&[addiu(1).encode(), addiu(2).encode()]);
        let mut cache = DecodeCache::new();
        cache.install_proven([TEXT_BASE]);
        cache.fill_block(TEXT_BASE, &mem);
        assert_eq!(cache.verify_sweep(), None, "clean cache passes");

        cache.corrupt_proven_bit(0, 3).unwrap();
        assert!(cache.verify_sweep().unwrap().contains("replica mismatch"));
        cache.degrade();
        assert_eq!(cache.verify_sweep(), None, "degrade heals the cache");

        cache.fill_block(TEXT_BASE, &mem);
        cache.corrupt_decode_slot(0, 0).unwrap();
        assert!(cache.verify_sweep().unwrap().contains("checksum mismatch"));
    }

    #[test]
    fn degrade_drops_pages_and_proofs_and_refills_heal() {
        let mem = text_with(&[addiu(1).encode()]);
        let mut cache = DecodeCache::new();
        cache.install_proven([TEXT_BASE]);
        cache.fill_block(TEXT_BASE, &mem);
        cache.corrupt_decode_slot(0, 0).unwrap();
        cache.degrade();
        assert!(!cache.has_proven());
        assert_eq!(cache.lookup(TEXT_BASE), None, "pages dropped");
        // The refill re-predecodes from authoritative memory: the corrupted
        // slot is healed, and nothing is proven any more.
        cache.fill_block(TEXT_BASE, &mem);
        let (d, proven) = cache.lookup(TEXT_BASE).unwrap();
        assert_eq!(d.instr, addiu(1));
        assert_eq!(d.imm, 1, "corruption healed by the authoritative refill");
        assert!(!proven);
        assert_eq!(cache.verify_sweep(), None);
    }

    #[test]
    fn corruption_hooks_report_none_on_an_empty_cache() {
        let mut cache = DecodeCache::new();
        assert_eq!(cache.corrupt_proven_bit(7, 9), None);
        assert_eq!(cache.corrupt_decode_slot(7, 9), None);
    }

    #[test]
    fn install_proven_resets_already_filled_pages() {
        let mem = text_with(&[addiu(1).encode()]);
        let mut cache = DecodeCache::new();
        cache.fill_block(TEXT_BASE, &mem);
        cache.install_proven([TEXT_BASE]);
        // The pre-install fill was dropped; the refill stamps the bit.
        assert_eq!(cache.lookup(TEXT_BASE), None);
        cache.fill_block(TEXT_BASE, &mem);
        assert!(cache.lookup(TEXT_BASE).unwrap().1);
    }
}
