//! Property tests for taint-tracking soundness.

use proptest::prelude::*;
use ptaint_cpu::{taint_alu, Cpu, DetectionPolicy, StepEvent};
use ptaint_isa::{IAluOp, Instr, RAluOp, Reg, ShiftOp, TEXT_BASE};
use ptaint_mem::{MemorySystem, WordTaint};

fn arb_ralu() -> impl Strategy<Value = RAluOp> {
    (0usize..RAluOp::ALL.len()).prop_map(|i| RAluOp::ALL[i])
}

fn arb_ialu() -> impl Strategy<Value = IAluOp> {
    (0usize..IAluOp::ALL.len()).prop_map(|i| IAluOp::ALL[i])
}

proptest! {
    /// Soundness: ALU results over untainted operands are never tainted.
    #[test]
    fn no_taint_from_clean_operands(op in arb_ralu(), a in any::<u32>(), b in any::<u32>()) {
        let t = taint_alu::ralu_result(op, a, WordTaint::CLEAN, b, WordTaint::CLEAN, false);
        prop_assert_eq!(t, WordTaint::CLEAN);
    }

    /// AND can only ever *reduce* the generic OR taint, never add to it.
    #[test]
    fn and_is_a_refinement(a in any::<u32>(), b in any::<u32>(), ta in 0u8..16, tb in 0u8..16) {
        let (ta, tb) = (WordTaint::from_bits(ta), WordTaint::from_bits(tb));
        let and = taint_alu::and_result(a, ta, b, tb);
        let or = taint_alu::generic(ta, tb);
        prop_assert_eq!(and & or, and, "AND taint must be a subset of the OR taint");
    }

    /// Shift smear is a superset of the pre-smear taint.
    #[test]
    fn shift_never_drops_taint(bits in 0u8..16, amt_bits in 0u8..16) {
        for op in ShiftOp::ALL {
            let t0 = WordTaint::from_bits(bits) | WordTaint::from_bits(amt_bits);
            let t = taint_alu::shift_result(op, WordTaint::from_bits(bits), WordTaint::from_bits(amt_bits));
            prop_assert_eq!(t & t0, t0);
        }
    }

    /// Immediate operations never invent taint on clean sources.
    #[test]
    fn ialu_clean_sources_stay_clean(op in arb_ialu(), a in any::<u32>(), imm in any::<u32>()) {
        prop_assert_eq!(taint_alu::ialu_result(op, a, WordTaint::CLEAN, imm), WordTaint::CLEAN);
    }

    /// End-to-end: executing random ALU instruction streams starting from a
    /// fully untainted machine never produces a tainted register (there is no
    /// taint source), and never raises a security alert.
    #[test]
    fn clean_machines_stay_clean(words in proptest::collection::vec(any::<u32>(), 1..64)) {
        let mut mem = MemorySystem::flat();
        let mut count = 0u32;
        for w in &words {
            if let Ok(insn) = Instr::decode(*w) {
                // Keep only side-effect-free ALU work.
                let ok = matches!(
                    insn,
                    Instr::RAlu { .. }
                        | Instr::IAlu { .. }
                        | Instr::Shift { .. }
                        | Instr::ShiftV { .. }
                        | Instr::Lui { .. }
                        | Instr::MulDiv { .. }
                        | Instr::MoveFromHi { .. }
                        | Instr::MoveFromLo { .. }
                        | Instr::MoveToHi { .. }
                        | Instr::MoveToLo { .. }
                );
                if ok {
                    mem.write_u32(TEXT_BASE + 4 * count, *w, WordTaint::CLEAN).unwrap();
                    count += 1;
                }
            }
        }
        mem.write_u32(TEXT_BASE + 4 * count, Instr::Break { code: 0 }.encode(), WordTaint::CLEAN)
            .unwrap();
        let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
        cpu.set_pc(TEXT_BASE);
        loop {
            if let StepEvent::BreakTrap(_) = cpu.step().expect("no exceptions possible") { break }
        }
        for r in Reg::all() {
            prop_assert_eq!(cpu.regs().taint(r), WordTaint::CLEAN);
        }
        prop_assert_eq!(cpu.stats().tainted_operand_instructions, 0);
    }

    /// End-to-end: a tainted register value fed through a chain of generic
    /// ALU copies still trips the detector at the final dereference.
    #[test]
    fn taint_survives_copy_chains(hops in 1usize..12) {
        let mut mem = MemorySystem::flat();
        let mut pc = TEXT_BASE;
        // t0 tainted; copy chain t0 -> t1 -> ... -> tN; then lw from tN.
        let regs = [Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::T4, Reg::T5, Reg::T6, Reg::T7,
                    Reg::S0, Reg::S1, Reg::S2, Reg::S3];
        for i in 0..hops {
            let insn = Instr::RAlu { op: RAluOp::Addu, rd: regs[i + 1], rs: regs[i], rt: Reg::ZERO };
            mem.write_u32(pc, insn.encode(), WordTaint::CLEAN).unwrap();
            pc += 4;
        }
        let deref = Instr::Load {
            width: ptaint_isa::MemWidth::Word,
            signed: true,
            rt: Reg::V0,
            base: regs[hops],
            offset: 0,
        };
        mem.write_u32(pc, deref.encode(), WordTaint::CLEAN).unwrap();
        let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
        cpu.set_pc(TEXT_BASE);
        cpu.regs_mut().set(Reg::T0, 0x6161_6161, WordTaint::ALL);
        let result = (0..hops + 1).map(|_| cpu.step()).last().unwrap();
        prop_assert!(matches!(result, Err(ptaint_cpu::CpuException::Security(_))));
    }
}

mod taint_watches {
    use ptaint_cpu::{Cpu, CpuException, DetectionPolicy, StepEvent};
    use ptaint_isa::{Instr, MemWidth, Reg, TEXT_BASE};
    use ptaint_mem::{MemorySystem, WordTaint};

    /// A store of tainted data into a watched region raises the annotation
    /// alert even though the *pointer* used is clean.
    #[test]
    fn tainted_store_into_watched_region_alerts() {
        let mut mem = MemorySystem::flat();
        let sw = Instr::Store {
            width: MemWidth::Word,
            rt: Reg::T1,
            base: Reg::T0,
            offset: 0,
        };
        mem.write_u32(TEXT_BASE, sw.encode(), WordTaint::CLEAN)
            .unwrap();
        let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
        cpu.set_pc(TEXT_BASE);
        cpu.add_taint_watch(0x1000_0000, 4, "secret");
        cpu.regs_mut().set(Reg::T0, 0x1000_0000, WordTaint::CLEAN);
        cpu.regs_mut().set(Reg::T1, 0xbeef, WordTaint::ALL);
        match cpu.step() {
            Err(CpuException::Security(alert)) => {
                assert_eq!(alert.kind, ptaint_cpu::AlertKind::AnnotationTainted);
                assert_eq!(alert.pointer, 0x1000_0000);
                assert!(alert.to_string().contains("annotated byte"));
            }
            other => panic!("expected annotation alert, got {other:?}"),
        }
    }

    /// Clean stores into the watched region are fine; tainted stores right
    /// next to it are fine too.
    #[test]
    fn watch_is_byte_precise() {
        let mut mem = MemorySystem::flat();
        let sw = Instr::Store {
            width: MemWidth::Word,
            rt: Reg::T1,
            base: Reg::T0,
            offset: 0,
        };
        mem.write_u32(TEXT_BASE, sw.encode(), WordTaint::CLEAN)
            .unwrap();
        mem.write_u32(TEXT_BASE + 4, sw.encode(), WordTaint::CLEAN)
            .unwrap();
        let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
        cpu.set_pc(TEXT_BASE);
        cpu.add_taint_watch(0x1000_0010, 4, "flag");
        // Clean data INTO the watch: no alert.
        cpu.regs_mut().set(Reg::T0, 0x1000_0010, WordTaint::CLEAN);
        cpu.regs_mut().set(Reg::T1, 7, WordTaint::CLEAN);
        assert!(matches!(cpu.step(), Ok(StepEvent::Executed)));
        // Tainted data NEXT TO the watch: no alert either.
        cpu.regs_mut().set(Reg::T0, 0x1000_0014, WordTaint::CLEAN);
        cpu.regs_mut().set(Reg::T1, 7, WordTaint::ALL);
        assert!(matches!(cpu.step(), Ok(StepEvent::Executed)));
        assert_eq!(cpu.taint_watches().len(), 1);
    }

    /// Ablated rule sets are queryable and actually change propagation.
    #[test]
    fn rules_are_live_configuration() {
        use ptaint_cpu::TaintRules;
        let mut mem = MemorySystem::flat();
        // slt $t2, $t0, $t1 — under PAPER rules this untaints $t0/$t1.
        let slt = Instr::RAlu {
            op: ptaint_isa::RAluOp::Slt,
            rd: Reg::T2,
            rs: Reg::T0,
            rt: Reg::T1,
        };
        mem.write_u32(TEXT_BASE, slt.encode(), WordTaint::CLEAN)
            .unwrap();
        let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
        cpu.set_taint_rules(TaintRules::without_compare_untaint());
        assert!(!cpu.taint_rules().compare_untaints);
        cpu.set_pc(TEXT_BASE);
        cpu.regs_mut().set(Reg::T0, 1, WordTaint::ALL);
        cpu.regs_mut().set(Reg::T1, 2, WordTaint::ALL);
        cpu.step().unwrap();
        // Operands stay tainted with the rule ablated.
        assert_eq!(cpu.regs().taint(Reg::T0), WordTaint::ALL);
        assert_eq!(cpu.regs().taint(Reg::T1), WordTaint::ALL);
    }
}

mod alu_differential {
    use proptest::prelude::*;
    use ptaint_cpu::{Cpu, DetectionPolicy, StepEvent};
    use ptaint_isa::{IAluOp, Instr, RAluOp, Reg, ShiftOp, TEXT_BASE};
    use ptaint_mem::{MemorySystem, WordTaint};

    /// Host-side reference semantics for R-type ALU ops.
    fn ralu_ref(op: RAluOp, a: u32, b: u32) -> u32 {
        match op {
            RAluOp::Add | RAluOp::Addu => a.wrapping_add(b),
            RAluOp::Sub | RAluOp::Subu => a.wrapping_sub(b),
            RAluOp::And => a & b,
            RAluOp::Or => a | b,
            RAluOp::Xor => a ^ b,
            RAluOp::Nor => !(a | b),
            RAluOp::Slt => u32::from((a as i32) < (b as i32)),
            RAluOp::Sltu => u32::from(a < b),
        }
    }

    fn ialu_ref(op: IAluOp, a: u32, imm: i16) -> u32 {
        let ext = if op.zero_extends() {
            u32::from(imm as u16)
        } else {
            imm as i32 as u32
        };
        match op {
            IAluOp::Addi | IAluOp::Addiu => a.wrapping_add(ext),
            IAluOp::Slti => u32::from((a as i32) < (ext as i32)),
            IAluOp::Sltiu => u32::from(a < ext),
            IAluOp::Andi => a & ext,
            IAluOp::Ori => a | ext,
            IAluOp::Xori => a ^ ext,
        }
    }

    fn exec_one(insn: Instr, a: u32, b: u32) -> u32 {
        let mut mem = MemorySystem::flat();
        mem.write_u32(TEXT_BASE, insn.encode(), WordTaint::CLEAN)
            .unwrap();
        let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
        cpu.set_pc(TEXT_BASE);
        cpu.regs_mut().set(Reg::T0, a, WordTaint::CLEAN);
        cpu.regs_mut().set(Reg::T1, b, WordTaint::CLEAN);
        assert!(matches!(cpu.step().unwrap(), StepEvent::Executed));
        cpu.regs().value(Reg::T2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn ralu_matches_reference(a in any::<u32>(), b in any::<u32>(), i in 0usize..10) {
            let op = RAluOp::ALL[i];
            let insn = Instr::RAlu { op, rd: Reg::T2, rs: Reg::T0, rt: Reg::T1 };
            prop_assert_eq!(exec_one(insn, a, b), ralu_ref(op, a, b), "{:?} {:#x} {:#x}", op, a, b);
        }

        #[test]
        fn ialu_matches_reference(a in any::<u32>(), imm in any::<i16>(), i in 0usize..7) {
            let op = IAluOp::ALL[i];
            let insn = Instr::IAlu { op, rt: Reg::T2, rs: Reg::T0, imm };
            prop_assert_eq!(exec_one(insn, a, 0), ialu_ref(op, a, imm), "{:?} {:#x} {}", op, a, imm);
        }

        #[test]
        fn shifts_match_reference(a in any::<u32>(), sh in 0u8..32, i in 0usize..3) {
            let op = ShiftOp::ALL[i];
            let expected = match op {
                ShiftOp::Sll => a << sh,
                ShiftOp::Srl => a >> sh,
                ShiftOp::Sra => ((a as i32) >> sh) as u32,
            };
            let imm = Instr::Shift { op, rd: Reg::T2, rt: Reg::T0, shamt: sh };
            prop_assert_eq!(exec_one(imm, a, 0), expected);
            // Variable form masks the amount to 5 bits.
            let var = Instr::ShiftV { op, rd: Reg::T2, rt: Reg::T0, rs: Reg::T1 };
            prop_assert_eq!(exec_one(var, a, u32::from(sh) | 0xffff_ffe0), expected);
        }

        #[test]
        fn mult_div_match_reference(a in any::<u32>(), b in any::<u32>()) {
            use ptaint_isa::MulDivOp;
            for op in MulDivOp::ALL {
                let mut mem = MemorySystem::flat();
                mem.write_u32(TEXT_BASE, Instr::MulDiv { op, rs: Reg::T0, rt: Reg::T1 }.encode(), WordTaint::CLEAN).unwrap();
                let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
                cpu.set_pc(TEXT_BASE);
                cpu.regs_mut().set(Reg::T0, a, WordTaint::CLEAN);
                cpu.regs_mut().set(Reg::T1, b, WordTaint::CLEAN);
                cpu.step().unwrap();
                let (lo, _) = cpu.regs().lo();
                let (hi, _) = cpu.regs().hi();
                match op {
                    MulDivOp::Mult => {
                        let p = i64::from(a as i32).wrapping_mul(i64::from(b as i32)) as u64;
                        prop_assert_eq!((lo, hi), (p as u32, (p >> 32) as u32));
                    }
                    MulDivOp::Multu => {
                        let p = u64::from(a) * u64::from(b);
                        prop_assert_eq!((lo, hi), (p as u32, (p >> 32) as u32));
                    }
                    MulDivOp::Div if b != 0 => {
                        let (x, y) = (a as i32, b as i32);
                        prop_assert_eq!((lo as i32, hi as i32), (x.wrapping_div(y), x.wrapping_rem(y)));
                    }
                    MulDivOp::Divu if b != 0 => {
                        prop_assert_eq!((lo, hi), (a / b, a % b));
                    }
                    _ => { /* division by zero: implementation-defined, deterministic */ }
                }
            }
        }
    }
}
