//! The CERT advisory survey behind the paper's Figure 1.
//!
//! The paper analyzes the 107 CERT advisories issued 2000–2003 and reports
//! that memory-corruption vulnerability classes — buffer overflow, format
//! string, integer overflow, heap corruption (heap overflow / double free),
//! and LibC globbing — collectively account for **67%** of them. The
//! per-category counts below reconstruct the figure's breakdown from the
//! advisory archive; the headline constraint (107 total, 67%
//! memory-corruption) matches the paper exactly.

use std::fmt;

/// One vulnerability category of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Category {
    /// Category name as used in the paper.
    pub name: &'static str,
    /// Number of CERT advisories 2000–2003 in this category.
    pub advisories: u32,
    /// Whether the paper counts it as a memory-corruption class defeated
    /// by pointer taintedness detection.
    pub memory_corruption: bool,
}

/// The Figure 1 dataset.
pub const CATEGORIES: [Category; 6] = [
    Category {
        name: "buffer overflow",
        advisories: 44,
        memory_corruption: true,
    },
    Category {
        name: "format string",
        advisories: 10,
        memory_corruption: true,
    },
    Category {
        name: "heap corruption",
        advisories: 9,
        memory_corruption: true,
    },
    Category {
        name: "integer overflow",
        advisories: 6,
        memory_corruption: true,
    },
    Category {
        name: "globbing",
        advisories: 3,
        memory_corruption: true,
    },
    Category {
        name: "other (non-memory)",
        advisories: 35,
        memory_corruption: false,
    },
];

/// Total advisories surveyed (the paper's 107).
#[must_use]
pub fn total_advisories() -> u32 {
    CATEGORIES.iter().map(|c| c.advisories).sum()
}

/// Advisories in memory-corruption categories.
#[must_use]
pub fn memory_corruption_advisories() -> u32 {
    CATEGORIES
        .iter()
        .filter(|c| c.memory_corruption)
        .map(|c| c.advisories)
        .sum()
}

/// The paper's headline fraction (67%).
#[must_use]
pub fn memory_corruption_share() -> f64 {
    f64::from(memory_corruption_advisories()) / f64::from(total_advisories())
}

/// Renders Figure 1 as an ASCII bar chart.
#[must_use]
pub fn render_figure_1() -> String {
    let mut out = String::new();
    out.push_str("Figure 1: Breakdown of CERT advisories 2000-2003 (107 total)\n");
    let max = CATEGORIES.iter().map(|c| c.advisories).max().unwrap_or(1);
    for c in CATEGORIES {
        let bar = "#".repeat((c.advisories * 40 / max) as usize);
        let pct = f64::from(c.advisories) * 100.0 / f64::from(total_advisories());
        out.push_str(&format!(
            "  {:<20} {:>3} ({pct:>4.1}%) {bar}\n",
            c.name, c.advisories
        ));
    }
    out.push_str(&format!(
        "  memory-corruption classes: {} of {} = {:.0}%\n",
        memory_corruption_advisories(),
        total_advisories(),
        memory_corruption_share() * 100.0
    ));
    out
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} advisories", self.name, self.advisories)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_the_paper() {
        assert_eq!(total_advisories(), 107, "the paper surveys 107 advisories");
        let share = memory_corruption_share();
        assert!(
            (0.665..0.68).contains(&share),
            "memory-corruption share must round to the paper's 67%, got {share}"
        );
    }

    #[test]
    fn buffer_overflow_dominates() {
        let bo = CATEGORIES
            .iter()
            .find(|c| c.name == "buffer overflow")
            .unwrap();
        for c in &CATEGORIES {
            assert!(bo.advisories >= c.advisories);
        }
    }

    #[test]
    fn figure_renders_all_categories() {
        let fig = render_figure_1();
        for c in &CATEGORIES {
            assert!(fig.contains(c.name), "{fig}");
        }
        assert!(fig.contains("67%"), "{fig}");
    }
}
