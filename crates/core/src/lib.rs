#![warn(missing_docs)]

//! # ptaint — pointer taintedness detection (DSN 2005) in Rust
//!
//! A full reproduction of *"Defeating Memory Corruption Attacks via Pointer
//! Taintedness Detection"* (S. Chen, J. Xu, N. Nakka, Z. Kalbarczyk,
//! R. K. Iyer — DSN 2005): a taint-tracking RISC processor in which every
//! byte of memory and every register byte carries a taintedness bit, input
//! from the outside world arrives tainted, ALU instructions propagate
//! taintedness (the paper's Table 1), and **dereferencing a tainted word —
//! as a load/store address or an indirect-jump target — raises a security
//! exception**, defeating both control-data and non-control-data memory
//! corruption attacks.
//!
//! ## Quick start
//!
//! ```
//! use ptaint::{DetectionPolicy, Machine, WorldConfig};
//!
//! // A classic stack smash: unbounded read into a 10-byte buffer.
//! let machine = Machine::from_c(r#"
//!     void vulnerable() {
//!         char buf[10];
//!         scanf("%s", buf);
//!     }
//!     int main() { vulnerable(); return 0; }
//! "#)?
//! .world(WorldConfig::new().stdin(vec![b'a'; 24]))
//! .policy(DetectionPolicy::PointerTaintedness);
//!
//! let outcome = machine.run();
//! let alert = outcome.reason.alert().expect("attack detected");
//! assert_eq!(alert.instr.to_string(), "jr $31");    // at the return
//! assert_eq!(alert.pointer, 0x61616161);            // the attacker's bytes
//! # Ok::<(), ptaint::BuildError>(())
//! ```
//!
//! ## Layout of the reproduction
//!
//! * [`Machine`] — build (mini-C or assembly) and run guest programs under
//!   a chosen [`DetectionPolicy`] and memory hierarchy;
//! * [`experiments`] — one entry point per table/figure of the paper's
//!   evaluation (§5): the synthetic attacks of Figure 2, the WU-FTPD
//!   transcript of Table 2, the false-positive workloads of Table 3, the
//!   false-negative trio of Table 4, the §5.1 coverage comparison against a
//!   Minos-style control-only baseline, and the §5.4 overhead accounting;
//! * [`cert`] — the CERT advisory breakdown behind Figure 1.
//!
//! The underlying substrates are re-exported: the ISA (`ptaint_isa`), the
//! taint-extended memory system (`ptaint_mem`), the CPU and pipeline model
//! (`ptaint_cpu`), the virtual OS (`ptaint_os`), the assembler
//! (`ptaint_asm`), the mini-C compiler (`ptaint_cc`), and the guest
//! programs (`ptaint_guest`).

pub mod cert;
pub mod experiments;
mod machine;

pub use machine::{Machine, MachineSnapshot};

// The user-facing vocabulary, re-exported from the substrate crates.
pub use ptaint_analyze::{
    analyze, analyze_with, cache as proof_cache, render_report, Analysis, AnalyzeStats, Finding,
    SiteKind,
};
pub use ptaint_asm::{assemble, disassemble, AsmError, Image};
pub use ptaint_cc::compile;
pub use ptaint_cpu::pipeline::{Pipeline, PipelineReport};
pub use ptaint_cpu::{
    AlertKind, Cpu, CpuException, DetectionPolicy, Engine, ExecStats, SecurityAlert, StepEvent,
    TaintRules, TaintWatch,
};
pub use ptaint_guest::{BuildError, LIBC_C};
pub use ptaint_inject::{
    classify, classify_fault, CampaignReport, CampaignSpec, Fault, FaultKind, OutcomeClass,
    SplitMix64, StateInjector, TrialRecord, TrialRun,
};
pub use ptaint_mem::{CacheConfig, HierarchyConfig, MemorySystem, TaintedMemory, WordTaint};
pub use ptaint_os::{
    load, load_with_observer, run_to_exit, run_to_exit_with, DeliveredInput, ExitReason, IoFault,
    IoFaultPlan, JournalEntry, JournalFormatError, NetSession, Os, ReplayDivergence, RunLimits,
    RunOutcome, StepHook, Sys, SyscallJournal, WorldConfig, EINTR,
};
pub use ptaint_profile::{
    EventProfile, HotProfile, ProfileReport, SymbolCount, SymbolTable, SyscallRow, TaintSite,
};
pub use ptaint_trace::{
    Event, ForensicChain, MetricsSnapshot, Observer, SharedObserver, ToJson, TraceConfig, TraceHub,
    TraceReport,
};
