//! One entry point per table and figure of the paper's evaluation (§5).
//!
//! | Item | Function | Paper reference |
//! |---|---|---|
//! | Figure 1 | [`crate::cert::render_figure_1`] | CERT advisory breakdown |
//! | Figure 2 | [`synthetic::run_synthetic_suite`] | exp1/exp2/exp3 detection |
//! | Figure 3 | [`figure3::run_pipeline_walk`] | detector staging in the pipeline |
//! | Table 1 | exhaustive tests in `ptaint_cpu::taint_alu`; demonstrated by [`table1::verify_propagation_rules`] | taint propagation rules |
//! | Table 2 | [`table2::run_wu_ftpd_transcript`] | WU-FTPD attack/detection session |
//! | Table 3 | [`table3::run_false_positive_suite`] | SPEC-like workloads, zero alerts |
//! | Table 4 | [`table4::run_false_negative_suite`] | engineered undetected attacks |
//! | §5.1 coverage | [`coverage::run_coverage_matrix`] | all attacks × {off, control-only, ptaint} |
//! | §5.4 overhead | [`overhead::run_overhead_report`] | taint-tracking cost accounting |
//!
//! Two studies extend the paper:
//!
//! * [`ablation`] removes each Table 1 special-case rule in turn, showing
//!   empirically why the rules exist (compare-untaint is load-bearing for
//!   the zero-false-positive result);
//! * [`annotations`] implements §5.3's future-work idea — programmer
//!   annotations on never-tainted data — and shows it closing the Table
//!   4(B) false negative;
//! * [`optimizer`] is a substrate-quality study: the mini-C peephole
//!   optimizer changes code shape without changing any observable —
//!   detection behaviour is code-shape independent.
//!
//! Every report type implements [`std::fmt::Display`], printing rows shaped
//! like the paper's tables; the `ptaint-bench` binaries simply print them.

pub mod ablation;
pub mod annotations;
pub mod caches;
pub mod coverage;
pub mod figure2_layout;
pub mod figure3;
pub mod optimizer;
pub mod overhead;
pub mod synthetic;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
