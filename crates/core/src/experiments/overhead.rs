//! §5.4 — architectural overhead accounting.
//!
//! The paper argues three costs:
//!
//! 1. **Area**: one taintedness bit per byte — a fixed 12.5% widening of
//!    memory, caches, and the register file. We report the measured tainted
//!    footprint (how much of that provisioned capacity a workload actually
//!    uses).
//! 2. **Performance**: taint propagation is off the critical path, so the
//!    pipeline spends **no extra cycles** — we verify that cycle counts
//!    under full detection equal those with detection off.
//! 3. **Software**: the kernel marks each delivered input byte tainted; at
//!    one instruction per byte, that is `input_bytes / instructions` extra
//!    work — the paper reports 0.002%–0.2% for SPEC.

use std::fmt;

use ptaint_cpu::DetectionPolicy;
use ptaint_guest::workloads;
use ptaint_mem::HierarchyConfig;
use ptaint_os::ExitReason;

use crate::Machine;

/// Overhead measurements for one workload.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Workload name.
    pub name: &'static str,
    /// Instructions retired (identical across policies).
    pub instructions: u64,
    /// Pipeline cycles with detection off.
    pub cycles_off: u64,
    /// Pipeline cycles with full detection.
    pub cycles_full: u64,
    /// Tainted input bytes delivered by the kernel.
    pub input_bytes: u64,
    /// §5.4's software overhead: one tainting instruction per input byte.
    pub software_overhead_pct: f64,
    /// Tainted bytes resident in memory at exit.
    pub tainted_resident_bytes: u64,
}

/// The §5.4 report.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Per-workload rows.
    pub rows: Vec<OverheadRow>,
    /// The architecture's fixed area overhead: one bit per byte.
    pub area_overhead_pct: f64,
}

impl OverheadReport {
    /// Whether taint tracking added zero pipeline cycles anywhere.
    #[must_use]
    pub fn zero_cycle_overhead(&self) -> bool {
        self.rows.iter().all(|r| r.cycles_off == r.cycles_full)
    }
}

/// Measures the §5.4 quantities over the Table 3 workloads.
///
/// # Panics
///
/// Panics if a workload fails to build or run — the suite is expected to be
/// green before overhead is measured.
#[must_use]
pub fn run_overhead_report(scale: u32) -> OverheadReport {
    let mut rows = Vec::new();
    for w in workloads::all() {
        let machine = Machine::from_c(w.source)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            .world(w.world(scale))
            .hierarchy(HierarchyConfig::flat());

        let (out_off, pipe_off) = machine.clone().policy(DetectionPolicy::Off).run_pipelined();
        let (out_full, pipe_full) = machine
            .clone()
            .policy(DetectionPolicy::PointerTaintedness)
            .run_pipelined();
        assert_eq!(out_full.reason, ExitReason::Exited(0), "{}", w.name);
        assert_eq!(out_off.reason, out_full.reason, "{}", w.name);

        // Tainted memory footprint at exit (re-run keeping the machine).
        let (cpu, mut os) = ptaint_os::load(
            machine.image(),
            w.world(scale),
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::flat(),
        );
        let mut cpu = cpu;
        let _ = ptaint_os::run_to_exit(&mut cpu, &mut os, Machine::DEFAULT_STEP_LIMIT);
        let tainted_resident = cpu.mem().memory().tainted_byte_count();

        let software_pct = if out_full.stats.instructions == 0 {
            0.0
        } else {
            out_full.tainted_input_bytes as f64 / out_full.stats.instructions as f64 * 100.0
        };
        rows.push(OverheadRow {
            name: w.name,
            instructions: out_full.stats.instructions,
            cycles_off: pipe_off.cycles,
            cycles_full: pipe_full.cycles,
            input_bytes: out_full.tainted_input_bytes,
            software_overhead_pct: software_pct,
            tainted_resident_bytes: tainted_resident,
        });
    }
    OverheadReport {
        rows,
        area_overhead_pct: 100.0 / 8.0,
    }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§5.4 — architectural overhead")?;
        writeln!(
            f,
            "  area: one taintedness bit per byte = {:.1}% wider memory/caches/registers",
            self.area_overhead_pct
        )?;
        writeln!(
            f,
            "  performance: taint tracking off the critical path — zero extra cycles: {}",
            if self.zero_cycle_overhead() {
                "verified"
            } else {
                "VIOLATED"
            }
        )?;
        writeln!(
            f,
            "\n  {:<8} {:>13} {:>13} {:>13} {:>10} {:>10} {:>10}",
            "program",
            "instructions",
            "cycles(off)",
            "cycles(full)",
            "input B",
            "sw ovh %",
            "tainted B"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<8} {:>13} {:>13} {:>13} {:>10} {:>10.4} {:>10}",
                r.name,
                r.instructions,
                r.cycles_off,
                r.cycles_full,
                r.input_bytes,
                r.software_overhead_pct,
                r.tainted_resident_bytes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taint_tracking_adds_no_cycles_and_small_software_overhead() {
        let report = run_overhead_report(2);
        assert_eq!(report.rows.len(), 6);
        assert!(report.zero_cycle_overhead(), "{report}");
        assert!((report.area_overhead_pct - 12.5).abs() < 1e-9);
        for row in &report.rows {
            // The paper's software overhead band is 0.002%..0.2%; our small
            // test inputs run fewer instructions per byte, so allow some
            // slack while still bounding it to "well under 2%".
            assert!(
                row.software_overhead_pct < 2.0,
                "{}: {}%",
                row.name,
                row.software_overhead_pct
            );
            assert!(row.tainted_resident_bytes > 0, "{}", row.name);
        }
    }
}
