//! Figure 2 / §5.1.1 — the synthetic attack suite: exp1 (stack buffer
//! overflow), exp2 (heap corruption), exp3 (format string), each run under
//! full pointer-taintedness detection.

use std::fmt;

use ptaint_cpu::{DetectionPolicy, SecurityAlert};
use ptaint_guest::apps::{calibrate_format_pad, run_app, synthetic};

/// The detection result for one synthetic program.
#[derive(Debug, Clone)]
pub struct SyntheticDetection {
    /// Program name (`exp1`, `exp2`, `exp3`).
    pub name: &'static str,
    /// The attack input description.
    pub attack: String,
    /// The alert raised by the detector.
    pub alert: SecurityAlert,
    /// What the paper reports for this experiment.
    pub paper_expectation: &'static str,
}

/// Results for the whole suite.
#[derive(Debug, Clone)]
pub struct SyntheticSuite {
    /// One detection per program.
    pub detections: Vec<SyntheticDetection>,
}

/// Runs exp1, exp2 and exp3 with the paper's attack inputs under full
/// detection and collects the alerts.
///
/// # Panics
///
/// Panics if any synthetic attack goes undetected — that would falsify the
/// reproduction (the test suite pins this down with precise assertions).
#[must_use]
pub fn run_synthetic_suite() -> SyntheticSuite {
    let mut detections = Vec::new();

    let exp1 = ptaint_guest::build(synthetic::EXP1_SOURCE).expect("exp1 builds");
    let out = run_app(
        &exp1,
        synthetic::exp1_attack_world(),
        DetectionPolicy::PointerTaintedness,
    );
    detections.push(SyntheticDetection {
        name: "exp1 (stack buffer overflow)",
        attack: "stdin: 24 x 'a' into char buf[10] via scanf(\"%s\")".into(),
        alert: *out.reason.alert().expect("exp1 detected"),
        paper_expectation:
            "alert at the return instruction (jr $31), return address tainted 0x61616161",
    });

    let exp2 = ptaint_guest::build(synthetic::EXP2_SOURCE).expect("exp2 builds");
    let out = run_app(
        &exp2,
        synthetic::exp2_attack_world(),
        DetectionPolicy::PointerTaintedness,
    );
    detections.push(SyntheticDetection {
        name: "exp2 (heap corruption)",
        attack: "stdin: overflow of malloc(8) into the next free chunk's fd/bk links".into(),
        alert: *out.reason.alert().expect("exp2 detected"),
        paper_expectation: "alert inside free() dereferencing the tainted chunk link (0x616161xx)",
    });

    let exp3 = ptaint_guest::build(synthetic::EXP3_SOURCE).expect("exp3 builds");
    let pad = calibrate_format_pad(&exp3, synthetic::exp3_attack_world, 0x6463_6261, 16)
        .expect("exp3 pad calibrates");
    let out = run_app(
        &exp3,
        synthetic::exp3_attack_world(pad),
        DetectionPolicy::PointerTaintedness,
    );
    detections.push(SyntheticDetection {
        name: "exp3 (format string)",
        attack: format!("socket: \"abcd{}%n\" through printf(buf)", "%x".repeat(pad)),
        alert: *out.reason.alert().expect("exp3 detected"),
        paper_expectation: "alert at the %n store (sw) dereferencing 0x64636261 ('abcd')",
    });

    SyntheticSuite { detections }
}

impl fmt::Display for SyntheticSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 2 / §5.1.1 — synthetic vulnerable programs")?;
        for d in &self.detections {
            writeln!(f, "\n  {}", d.name)?;
            writeln!(f, "    attack : {}", d.attack)?;
            writeln!(f, "    alert  : {}", d.alert)?;
            writeln!(f, "    paper  : {}", d.paper_expectation)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_cpu::AlertKind;

    #[test]
    fn suite_reproduces_all_three_paper_alerts() {
        let suite = run_synthetic_suite();
        assert_eq!(suite.detections.len(), 3);

        let exp1 = &suite.detections[0].alert;
        assert_eq!(exp1.kind, AlertKind::JumpPointer);
        assert_eq!(exp1.pointer, 0x6161_6161);

        let exp2 = &suite.detections[1].alert;
        assert_eq!(exp2.kind, AlertKind::DataPointer);
        assert_eq!(exp2.pointer & 0xffff_ff00, 0x6161_6100);

        let exp3 = &suite.detections[2].alert;
        assert_eq!(exp3.kind, AlertKind::DataPointer);
        assert_eq!(exp3.pointer, 0x6463_6261);

        let rendered = suite.to_string();
        assert!(rendered.contains("jr $31"), "{rendered}");
        assert!(rendered.contains("0x64636261"), "{rendered}");
    }
}
