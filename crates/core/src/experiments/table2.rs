//! Table 2 — attacking WU-FTPD on the proposed architecture: the full
//! client/server session transcript ending in the detector's alert.

use std::fmt;

use ptaint_cpu::{DetectionPolicy, SecurityAlert};
use ptaint_guest::apps::{calibrate_format_pad, run_app, wu_ftpd};

/// Who said a transcript line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Speaker {
    /// The FTP server (the victim).
    Server,
    /// The FTP client (the attacker).
    Client,
    /// The pointer-taintedness detector.
    Detector,
}

/// One line of the Table 2 transcript.
#[derive(Debug, Clone)]
pub struct TranscriptLine {
    /// Who produced the line.
    pub speaker: Speaker,
    /// The text.
    pub text: String,
}

/// The reproduced Table 2.
#[derive(Debug, Clone)]
pub struct Table2Report {
    /// The session transcript, in order.
    pub lines: Vec<TranscriptLine>,
    /// The detection alert that stopped the attack.
    pub alert: SecurityAlert,
    /// Address of the targeted `session_uid` word.
    pub target_address: u32,
    /// Calibrated `%x` pad count used by the exploit.
    pub pad: usize,
}

/// Runs the WU-FTPD attack session under full detection and reconstructs
/// the paper's Table 2 transcript.
///
/// # Panics
///
/// Panics if the attack calibration fails or the attack goes undetected
/// (either would falsify the reproduction).
#[must_use]
pub fn run_wu_ftpd_transcript() -> Table2Report {
    let image = ptaint_guest::build(wu_ftpd::SOURCE).expect("wu_ftpd builds");
    let target = wu_ftpd::uid_address(&image);
    let pad = calibrate_format_pad(&image, |p| wu_ftpd::attack_world(&image, p), target, 48)
        .expect("format pad calibrates");
    let world = wu_ftpd::attack_world(&image, pad);
    let out = run_app(&image, world, DetectionPolicy::PointerTaintedness);
    let alert = *out.reason.alert().expect("attack detected");

    // Reconstruct the conversation: client lines are the scripted session;
    // server lines come from the captured transcript.
    let mut lines = Vec::new();
    let server_text = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
    let mut server_lines = server_text.lines();
    if let Some(banner) = server_lines.next() {
        lines.push(TranscriptLine {
            speaker: Speaker::Server,
            text: banner.trim().to_owned(),
        });
    }
    let client_msgs: Vec<String> = vec![
        "USER user1".into(),
        "PASS xxxxxxx".into(),
        format!(
            "SITE EXEC ..\\x{:02x}\\x{:02x}\\x{:02x}\\x{:02x}{}%n",
            target & 0xff,
            (target >> 8) & 0xff,
            (target >> 16) & 0xff,
            (target >> 24) & 0xff,
            "%x".repeat(pad)
        ),
    ];
    for msg in client_msgs {
        lines.push(TranscriptLine {
            speaker: Speaker::Client,
            text: msg,
        });
        if let Some(reply) = server_lines.next() {
            let trimmed = reply.trim();
            if !trimmed.is_empty() {
                lines.push(TranscriptLine {
                    speaker: Speaker::Server,
                    text: trimmed.to_owned(),
                });
            }
        }
    }
    lines.push(TranscriptLine {
        speaker: Speaker::Detector,
        text: alert.to_string(),
    });

    Table2Report {
        lines,
        alert,
        target_address: target,
        pad,
    }
}

impl fmt::Display for Table2Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2 — attacking WU-FTPD on the proposed architecture"
        )?;
        writeln!(
            f,
            "  (target word session_uid at {:#010x}, calibrated pad = {} %x directives)\n",
            self.target_address, self.pad
        )?;
        for line in &self.lines {
            let who = match line.speaker {
                Speaker::Server => "FTP Server",
                Speaker::Client => "FTP Client",
                Speaker::Detector => "Alert",
            };
            writeln!(f, "  {who:<11} {}", line.text)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_cpu::AlertKind;

    #[test]
    fn transcript_reproduces_table_2() {
        let report = run_wu_ftpd_transcript();
        // The alert is a store-word through the tainted uid address —
        // the paper's `sw $21,0($3)  $3=0x1002bc20` shape.
        assert_eq!(report.alert.kind, AlertKind::DataPointer);
        assert_eq!(report.alert.pointer, report.target_address);
        assert!(report.alert.instr.to_string().starts_with("sw "));

        let text = report.to_string();
        assert!(text.contains("220 FTP server"), "{text}");
        assert!(text.contains("USER user1"), "{text}");
        assert!(text.contains("331 Password required"), "{text}");
        assert!(text.contains("PASS xxxxxxx"), "{text}");
        assert!(text.contains("230 User logged in"), "{text}");
        assert!(text.contains("SITE EXEC"), "{text}");
        assert!(text.contains("%n"), "{text}");
        assert!(text.contains("Alert"), "{text}");
    }
}
