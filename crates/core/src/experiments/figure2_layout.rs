//! Figure 2, drawn live — the paper's memory-layout diagrams with the
//! tainted ("grey") regions, reconstructed from the machine state at the
//! instant the detector fires.
//!
//! For exp1 this renders the victim frame: buffer bytes, saved frame
//! pointer and return address, with `▓` marking tainted bytes — the exact
//! picture of the paper's Figure 2 (top).

use std::fmt;

use ptaint_cpu::{Cpu, CpuException, SecurityAlert, StepEvent};
use ptaint_guest::apps::synthetic;
use ptaint_isa::Reg;
use ptaint_mem::HierarchyConfig;
use ptaint_os::WorldConfig;

/// One rendered word of the layout.
#[derive(Debug, Clone)]
pub struct LayoutWord {
    /// Virtual address.
    pub addr: u32,
    /// The word value.
    pub value: u32,
    /// Per-byte taint flags (LSB first).
    pub taint: [bool; 4],
    /// Annotation (what this word is).
    pub label: &'static str,
}

/// The rendered Figure 2 frame.
#[derive(Debug, Clone)]
pub struct Figure2Layout {
    /// The alert that stopped execution.
    pub alert: SecurityAlert,
    /// Stack words from the buffer up past the return address.
    pub words: Vec<LayoutWord>,
}

/// Runs the exp1 attack to the moment of detection and captures the victim
/// frame.
///
/// # Panics
///
/// Panics if the attack unexpectedly goes undetected.
#[must_use]
pub fn capture_exp1_frame() -> Figure2Layout {
    let image = ptaint_guest::build(synthetic::EXP1_SOURCE).expect("exp1 builds");
    let world: WorldConfig = synthetic::exp1_attack_world();
    let (mut cpu, mut os) = ptaint_os::load(
        &image,
        world,
        ptaint_cpu::DetectionPolicy::PointerTaintedness,
        HierarchyConfig::flat(),
    );
    let alert = run_until_alert(&mut cpu, &mut os);

    // At the faulting `jr $31`, `$sp` has been restored to the frame base
    // (exp1's entry sp). The frame below it held, descending:
    //   [sp-4]  saved $ra   (tainted by the overflow)
    //   [sp-8]  saved $fp   (tainted)
    //   [sp-18..sp-8] buf   (the 10-byte buffer, plus alignment padding)
    let sp = cpu.regs().value(Reg::SP);
    let base = sp - 24;
    let mut words = Vec::new();
    for i in 0..8u32 {
        let addr = base + 4 * i;
        let (value, taint) = cpu.mem().memory().read_u32(addr).expect("frame readable");
        let label = match addr {
            a if a == sp - 4 => "saved return address",
            a if a == sp - 8 => "saved frame pointer",
            a if a >= sp - 18 && a < sp - 8 => "buf (char[10])",
            a if a < sp - 18 => "locals / padding",
            _ => "caller frame",
        };
        let mut flags = [false; 4];
        for (b, flag) in flags.iter_mut().enumerate() {
            *flag = taint.byte(b);
        }
        words.push(LayoutWord {
            addr,
            value,
            taint: flags,
            label,
        });
    }
    Figure2Layout { alert, words }
}

fn run_until_alert(cpu: &mut Cpu, os: &mut ptaint_os::Os) -> SecurityAlert {
    for _ in 0..50_000_000u64 {
        match cpu.step() {
            Ok(StepEvent::SyscallTrap) => os.handle_syscall(cpu),
            Ok(_) => {}
            Err(CpuException::Security(alert)) => return alert,
            Err(other) => panic!("unexpected exception: {other}"),
        }
    }
    panic!("attack was not detected");
}

impl fmt::Display for Figure2Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2 (live) — exp1's victim frame at the instant of detection"
        )?;
        writeln!(f, "  alert: {}\n", self.alert)?;
        writeln!(
            f,
            "  {:>10}  {:>10}  {:<8} role",
            "address", "value", "taint"
        )?;
        writeln!(f, "  low addresses — the overflow ran upward ↓")?;
        for w in &self.words {
            let taint: String = (0..4)
                .rev()
                .map(|i| if w.taint[i] { '▓' } else { '·' })
                .collect();
            writeln!(
                f,
                "  {:#010x}  {:#010x}  [{taint}]   {}",
                w.addr, w.value, w.label
            )?;
        }
        writeln!(f, "  high addresses — ▓ = tainted byte (the paper's grey)")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captured_frame_shows_the_papers_grey_region() {
        let layout = capture_exp1_frame();
        assert_eq!(layout.alert.pointer, 0x6161_6161);
        // The saved return address word is fully tainted and holds 'aaaa'.
        let ra = layout
            .words
            .iter()
            .find(|w| w.label == "saved return address")
            .expect("return address in the window");
        assert_eq!(ra.value, 0x6161_6161);
        assert!(ra.taint.iter().all(|&t| t));
        // The saved frame pointer is tainted too.
        let fp = layout
            .words
            .iter()
            .find(|w| w.label == "saved frame pointer")
            .expect("frame pointer in the window");
        assert!(fp.taint.iter().all(|&t| t));
        // Buffer words are tainted ('aaaa').
        assert!(layout
            .words
            .iter()
            .filter(|w| w.label == "buf (char[10])")
            .all(|w| w.taint.iter().any(|&t| t)));
        let rendered = layout.to_string();
        assert!(rendered.contains("▓▓▓▓"), "{rendered}");
        assert!(rendered.contains("saved return address"), "{rendered}");
    }
}
