//! Table 3 — the false-positive experiment: run the six SPEC-2000-like
//! workloads under full pointer-taintedness detection and verify that not a
//! single alert is raised.

use std::fmt;

use ptaint_cpu::DetectionPolicy;
use ptaint_guest::apps::run_app;
use ptaint_guest::workloads;

/// One Table 3 row.
#[derive(Debug, Clone)]
pub struct WorkloadRow {
    /// Workload name (SPEC counterpart, lowercase).
    pub name: &'static str,
    /// The SPEC 2000 benchmark this mirrors.
    pub spec_name: &'static str,
    /// Static program size in bytes (text + data).
    pub program_bytes: u32,
    /// Input bytes consumed (all tainted at the kernel boundary).
    pub input_bytes: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Instructions that touched tainted data.
    pub tainted_instructions: u64,
    /// Alerts raised (the experiment's claim: always zero).
    pub alerts: u32,
    /// The workload's self-reported result line.
    pub output: String,
}

/// The reproduced Table 3.
#[derive(Debug, Clone)]
pub struct Table3Report {
    /// Per-workload rows in the paper's order.
    pub rows: Vec<WorkloadRow>,
    /// Input scale used (larger = longer runs).
    pub scale: u32,
}

impl Table3Report {
    /// Total alerts across the suite (the headline number: 0).
    #[must_use]
    pub fn total_alerts(&self) -> u32 {
        self.rows.iter().map(|r| r.alerts).sum()
    }

    /// Total instructions executed.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.rows.iter().map(|r| r.instructions).sum()
    }

    /// Total input bytes.
    #[must_use]
    pub fn total_input_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.input_bytes).sum()
    }
}

/// Runs the six workloads at the given input scale under full detection.
///
/// # Panics
///
/// Panics if a workload fails to build or crashes (as opposed to raising an
/// alert, which is *counted*, not panicked on — a nonzero count is the
/// falsification signal the tests assert against).
#[must_use]
pub fn run_false_positive_suite(scale: u32) -> Table3Report {
    let mut rows = Vec::new();
    for w in workloads::all() {
        let image = ptaint_guest::build(w.source)
            .unwrap_or_else(|e| panic!("{} failed to build: {e}", w.name));
        let program_bytes = image.text.len() as u32 * 4 + image.data.len() as u32;
        let out = run_app(&image, w.world(scale), DetectionPolicy::PointerTaintedness);
        let alerts = u32::from(out.reason.is_detected());
        assert!(
            matches!(out.reason, ptaint_os::ExitReason::Exited(0)) || alerts > 0,
            "{} neither exited cleanly nor alerted: {:?}",
            w.name,
            out.reason
        );
        rows.push(WorkloadRow {
            name: w.name,
            spec_name: w.spec_name,
            program_bytes,
            input_bytes: out.tainted_input_bytes,
            instructions: out.stats.instructions,
            tainted_instructions: out.stats.tainted_operand_instructions,
            alerts,
            output: out.stdout_text().trim().to_owned(),
        });
    }
    Table3Report { rows, scale }
}

impl fmt::Display for Table3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 3 — false-positive test with SPEC-2000-like workloads (scale {})",
            self.scale
        )?;
        writeln!(
            f,
            "  {:<8} {:>12} {:>12} {:>14} {:>14} {:>7}",
            "program", "size (B)", "input (B)", "instructions", "tainted-insn", "alerts"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<8} {:>12} {:>12} {:>14} {:>14} {:>7}",
                r.name,
                r.program_bytes,
                r.input_bytes,
                r.instructions,
                r.tainted_instructions,
                r.alerts
            )?;
        }
        writeln!(
            f,
            "  {:<8} {:>12} {:>12} {:>14} {:>14} {:>7}",
            "total",
            self.rows.iter().map(|r| r.program_bytes).sum::<u32>(),
            self.total_input_bytes(),
            self.total_instructions(),
            self.rows
                .iter()
                .map(|r| r.tainted_instructions)
                .sum::<u64>(),
            self.total_alerts()
        )?;
        writeln!(f, "\n  outputs:")?;
        for r in &self.rows {
            writeln!(f, "    {}", r.output)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_positives_at_test_scale() {
        let report = run_false_positive_suite(3);
        assert_eq!(report.rows.len(), 6);
        assert_eq!(report.total_alerts(), 0, "{report}");
        assert!(report.total_instructions() > 50_000, "{report}");
        assert!(report.total_input_bytes() > 200, "{report}");
        for row in &report.rows {
            assert!(row.tainted_instructions > 0, "{} never saw taint", row.name);
        }
        let text = report.to_string();
        for name in ["bzip2", "gcc", "gzip", "mcf", "parser", "vpr"] {
            assert!(text.contains(name), "{text}");
        }
    }
}
