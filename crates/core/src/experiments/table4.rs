//! Table 4 / §5.3 — the engineered false-negative scenarios: attacks that
//! corrupt memory or leak secrets *without* tainting any pointer, which the
//! architecture therefore (by design) does not detect.

use std::fmt;

use ptaint_cpu::DetectionPolicy;
use ptaint_guest::apps::{run_app, table4};
use ptaint_os::{ExitReason, WorldConfig};

/// One Table 4 scenario result.
#[derive(Debug, Clone)]
pub struct FalseNegativeRow {
    /// Scenario label (matching the paper's (A)/(B)/(C)).
    pub scenario: &'static str,
    /// The attack input.
    pub attack: &'static str,
    /// Whether an alert was raised (expected: false).
    pub alerted: bool,
    /// Whether the attack achieved its effect (expected: true).
    pub damage_done: bool,
    /// Evidence of the damage from the program output.
    pub evidence: String,
    /// Why the architecture misses it, per the paper.
    pub why_missed: &'static str,
}

/// The reproduced Table 4.
#[derive(Debug, Clone)]
pub struct Table4Report {
    /// Scenario rows (A), (B), (C).
    pub rows: Vec<FalseNegativeRow>,
}

fn run_scenario(
    scenario: &'static str,
    source: &str,
    world: WorldConfig,
    attack: &'static str,
    damage_marker: &str,
    why_missed: &'static str,
) -> FalseNegativeRow {
    let image = ptaint_guest::build(source).expect("scenario builds");
    let out = run_app(&image, world, DetectionPolicy::PointerTaintedness);
    let alerted = out.reason.is_detected();
    let stdout = out.stdout_text();
    FalseNegativeRow {
        scenario,
        attack,
        alerted,
        damage_done: stdout.contains(damage_marker) && matches!(out.reason, ExitReason::Exited(_)),
        evidence: stdout.trim().to_owned(),
        why_missed,
    }
}

/// Runs all three Table 4 scenarios under full detection.
#[must_use]
pub fn run_false_negative_suite() -> Table4Report {
    let rows = vec![
        run_scenario(
            "(A) integer overflow -> out-of-bounds array index",
            table4::INT_OVERFLOW_SOURCE,
            table4::int_overflow_attack_world(),
            "stdin: \"-1\" (flawed bound check lacks a lower bound)",
            "GUARD CORRUPTED",
            "the bound-check comparison untaints the index, and an array \
             index is *supposed* to enter address arithmetic",
        ),
        run_scenario(
            "(B) buffer overflow corrupting an authentication flag",
            table4::AUTH_FLAG_SOURCE,
            table4::auth_flag_attack_world(),
            "stdin: 16 filler bytes + nonzero word over `auth`",
            "ACCESS GRANTED",
            "the corrupted flag is only branched on, never dereferenced — \
             no pointer is tainted",
        ),
        run_scenario(
            "(C) format string information leak",
            table4::FMT_LEAK_SOURCE,
            table4::fmt_leak_attack_world(),
            "stdin: \"%x%x%x%x\" (reads stack words incl. secret_key)",
            "12345678",
            "%x only reads through the untainted argument pointer; nothing \
             tainted is dereferenced",
        ),
    ];
    Table4Report { rows }
}

impl Table4Report {
    /// The experiment's claim: every scenario does damage and none alerts.
    #[must_use]
    pub fn all_missed_with_damage(&self) -> bool {
        self.rows.iter().all(|r| !r.alerted && r.damage_done)
    }
}

impl fmt::Display for Table4Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 4 / §5.3 — false-negative scenarios (undetected by design)"
        )?;
        for r in &self.rows {
            writeln!(f, "\n  {}", r.scenario)?;
            writeln!(f, "    attack   : {}", r.attack)?;
            writeln!(
                f,
                "    result   : alert={} damage={}",
                if r.alerted { "YES (unexpected!)" } else { "no" },
                if r.damage_done {
                    "yes"
                } else {
                    "NO (unexpected!)"
                }
            )?;
            writeln!(f, "    evidence : {}", r.evidence)?;
            writeln!(f, "    why      : {}", r.why_missed)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_do_damage_without_alerts() {
        let report = run_false_negative_suite();
        assert_eq!(report.rows.len(), 3);
        assert!(report.all_missed_with_damage(), "{report}");
    }
}
