//! Table 1 — the taintedness propagation rules of the ALU, demonstrated
//! rule by rule on the live machine.
//!
//! The authoritative implementation (and its exhaustive unit/property
//! tests) lives in `ptaint_cpu::taint_alu`; this experiment *executes* one
//! representative instruction per rule on a real CPU and reports the
//! observed taint movement, producing the rows of the paper's Table 1.

use std::fmt;

use ptaint_cpu::{Cpu, DetectionPolicy, StepEvent};
use ptaint_isa::{Instr, Reg, TEXT_BASE};
use ptaint_mem::{MemorySystem, WordTaint};

/// One verified propagation rule.
#[derive(Debug, Clone)]
pub struct RuleDemonstration {
    /// The Table 1 row.
    pub rule: &'static str,
    /// The instruction executed.
    pub instruction: String,
    /// Source taints before execution.
    pub before: String,
    /// Destination taint after execution.
    pub after: String,
    /// Whether the observed behaviour matches the table.
    pub matches_table: bool,
}

/// The verified Table 1.
#[derive(Debug, Clone)]
pub struct Table1Report {
    /// One demonstration per rule.
    pub rules: Vec<RuleDemonstration>,
}

fn exec_one(insn: Instr, setup: impl FnOnce(&mut Cpu)) -> Cpu {
    let mut mem = MemorySystem::flat();
    mem.write_u32(TEXT_BASE, insn.encode(), WordTaint::CLEAN)
        .expect("text");
    let mut cpu = Cpu::new(mem, DetectionPolicy::PointerTaintedness);
    cpu.set_pc(TEXT_BASE);
    setup(&mut cpu);
    assert!(matches!(cpu.step().expect("executes"), StepEvent::Executed));
    cpu
}

/// Executes one representative instruction per Table 1 rule and verifies
/// the propagation.
#[must_use]
pub fn verify_propagation_rules() -> Table1Report {
    let mut rules = Vec::new();

    // Rule 1: generic ALU — taint(rd) = taint(rs) | taint(rt).
    let insn = Instr::RAlu {
        op: ptaint_isa::RAluOp::Addu,
        rd: Reg::T2,
        rs: Reg::T0,
        rt: Reg::T1,
    };
    let cpu = exec_one(insn, |cpu| {
        cpu.regs_mut().set(Reg::T0, 5, WordTaint::from_bits(0b0001));
        cpu.regs_mut().set(Reg::T1, 6, WordTaint::from_bits(0b1000));
    });
    rules.push(RuleDemonstration {
        rule: "generic ALU: taint(R1) = taint(R2) OR taint(R3)",
        instruction: insn.to_string(),
        before: "t0=[---T] t1=[T---]".into(),
        after: format!("t2=[{}]", cpu.regs().taint(Reg::T2)),
        matches_table: cpu.regs().taint(Reg::T2) == WordTaint::from_bits(0b1001),
    });

    // Rule 2: shift — taint smears to the adjacent byte along the
    // direction of shifting.
    let insn = Instr::Shift {
        op: ptaint_isa::ShiftOp::Sll,
        rd: Reg::T1,
        rt: Reg::T0,
        shamt: 8,
    };
    let cpu = exec_one(insn, |cpu| {
        cpu.regs_mut()
            .set(Reg::T0, 0xab, WordTaint::from_bits(0b0001));
    });
    rules.push(RuleDemonstration {
        rule: "shift: tainted byte also taints its neighbour along the shift direction",
        instruction: insn.to_string(),
        before: "t0=[---T]".into(),
        after: format!("t1=[{}]", cpu.regs().taint(Reg::T1)),
        matches_table: cpu.regs().taint(Reg::T1) == WordTaint::from_bits(0b0011),
    });

    // Rule 3: AND with an untainted zero untaints the byte.
    let insn = Instr::RAlu {
        op: ptaint_isa::RAluOp::And,
        rd: Reg::T2,
        rs: Reg::T0,
        rt: Reg::T1,
    };
    let cpu = exec_one(insn, |cpu| {
        cpu.regs_mut().set(Reg::T0, 0x4141_4141, WordTaint::ALL);
        cpu.regs_mut().set(Reg::T1, 0x0000_00ff, WordTaint::CLEAN);
    });
    rules.push(RuleDemonstration {
        rule: "AND: untaint each byte AND-ed with an untainted zero",
        instruction: insn.to_string(),
        before: "t0=[TTTT] (0x41414141), t1=[----] (0x000000ff)".into(),
        after: format!("t2=[{}]", cpu.regs().taint(Reg::T2)),
        matches_table: cpu.regs().taint(Reg::T2) == WordTaint::from_bits(0b0001),
    });

    // Rule 4: xor r1, r2, r2 — the zeroing idiom untaints.
    let insn = Instr::RAlu {
        op: ptaint_isa::RAluOp::Xor,
        rd: Reg::T1,
        rs: Reg::T0,
        rt: Reg::T0,
    };
    let cpu = exec_one(insn, |cpu| {
        cpu.regs_mut().set(Reg::T0, 0x4141_4141, WordTaint::ALL);
    });
    rules.push(RuleDemonstration {
        rule: "XOR R1,R2,R2: taintedness of R1 = 0000",
        instruction: insn.to_string(),
        before: "t0=[TTTT]".into(),
        after: format!("t1=[{}]", cpu.regs().taint(Reg::T1)),
        matches_table: cpu.regs().taint(Reg::T1) == WordTaint::CLEAN,
    });

    // Rule 5: compare untaints its operands.
    let insn = Instr::RAlu {
        op: ptaint_isa::RAluOp::Slt,
        rd: Reg::T2,
        rs: Reg::T0,
        rt: Reg::T1,
    };
    let cpu = exec_one(insn, |cpu| {
        cpu.regs_mut().set(Reg::T0, 3, WordTaint::ALL);
        cpu.regs_mut().set(Reg::T1, 9, WordTaint::ALL);
    });
    rules.push(RuleDemonstration {
        rule: "compare: untaint every byte of the operands",
        instruction: insn.to_string(),
        before: "t0=[TTTT] t1=[TTTT]".into(),
        after: format!(
            "t0=[{}] t1=[{}] t2=[{}]",
            cpu.regs().taint(Reg::T0),
            cpu.regs().taint(Reg::T1),
            cpu.regs().taint(Reg::T2)
        ),
        matches_table: cpu.regs().taint(Reg::T0) == WordTaint::CLEAN
            && cpu.regs().taint(Reg::T1) == WordTaint::CLEAN
            && cpu.regs().taint(Reg::T2) == WordTaint::CLEAN,
    });

    Table1Report { rules }
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1 — taintedness propagation by ALU instructions")?;
        for r in &self.rules {
            writeln!(
                f,
                "\n  rule    : {}\n  insn    : {}\n  before  : {}\n  after   : {}\n  verdict : {}",
                r.rule,
                r.instruction,
                r.before,
                r.after,
                if r.matches_table {
                    "matches Table 1"
                } else {
                    "MISMATCH"
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_matches_the_paper_table() {
        let report = verify_propagation_rules();
        assert_eq!(report.rules.len(), 5);
        for rule in &report.rules {
            assert!(rule.matches_table, "rule failed: {}", rule.rule);
        }
        assert!(report.to_string().contains("matches Table 1"));
    }
}
