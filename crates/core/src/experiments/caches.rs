//! §4.1 in numbers — taintedness resident in the cache hierarchy.
//!
//! The paper extends L1/L2 with a taint bit per byte. This experiment runs
//! the workloads behind the modeled two-level hierarchy and reports hit
//! rates plus how many resident lines actually hold tainted bytes at exit —
//! the live occupancy of the provisioned taint storage.

use std::fmt;

use ptaint_cpu::DetectionPolicy;
use ptaint_mem::HierarchyConfig;
use ptaint_os::ExitReason;

use crate::Machine;

/// Cache behaviour of one workload.
#[derive(Debug, Clone)]
pub struct CacheRow {
    /// Workload name.
    pub name: &'static str,
    /// L1 hit rate.
    pub l1_hit_rate: f64,
    /// L2 hit rate (of L1 misses).
    pub l2_hit_rate: f64,
    /// L1 lines holding tainted bytes at exit.
    pub l1_tainted_lines: usize,
    /// L2 lines holding tainted bytes at exit.
    pub l2_tainted_lines: usize,
    /// Tainted bytes resident in memory at exit.
    pub tainted_bytes: u64,
}

/// The cache study.
#[derive(Debug, Clone)]
pub struct CacheReport {
    /// Per-workload rows.
    pub rows: Vec<CacheRow>,
    /// Input scale.
    pub scale: u32,
}

/// Runs the workloads behind L1+L2 and collects cache/taint statistics.
///
/// # Panics
///
/// Panics if a workload fails to run cleanly.
#[must_use]
pub fn run_cache_study(scale: u32) -> CacheReport {
    let mut rows = Vec::new();
    for w in ptaint_guest::workloads::all() {
        let machine = Machine::from_c(w.source)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            .world(w.world(scale));
        let (mut cpu, mut os) = ptaint_os::load(
            machine.image(),
            w.world(scale),
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::two_level(),
        );
        let out = ptaint_os::run_to_exit(&mut cpu, &mut os, Machine::DEFAULT_STEP_LIMIT);
        assert_eq!(out.reason, ExitReason::Exited(0), "{}", w.name);
        let l1 = cpu.mem().l1_stats().expect("l1 configured");
        let l2 = cpu.mem().l2_stats().expect("l2 configured");
        let (l1_tainted, l2_tainted) = cpu.mem().tainted_lines();
        rows.push(CacheRow {
            name: w.name,
            l1_hit_rate: l1.hit_rate(),
            l2_hit_rate: l2.hit_rate(),
            l1_tainted_lines: l1_tainted,
            l2_tainted_lines: l2_tainted,
            tainted_bytes: cpu.mem().memory().tainted_byte_count(),
        });
    }
    CacheReport { rows, scale }
}

impl fmt::Display for CacheReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§4.1 — taintedness in the cache hierarchy (16K/4w L1, 256K/8w L2, scale {})",
            self.scale
        )?;
        writeln!(
            f,
            "  {:<8} {:>9} {:>9} {:>16} {:>16} {:>13}",
            "program",
            "L1 hit%",
            "L2 hit%",
            "L1 tainted lines",
            "L2 tainted lines",
            "tainted bytes"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<8} {:>8.1}% {:>8.1}% {:>16} {:>16} {:>13}",
                r.name,
                r.l1_hit_rate * 100.0,
                r.l2_hit_rate * 100.0,
                r.l1_tainted_lines,
                r.l2_tainted_lines,
                r.tainted_bytes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_serve_the_workloads_and_hold_taint() {
        let report = run_cache_study(2);
        assert_eq!(report.rows.len(), 6);
        for row in &report.rows {
            assert!(
                row.l1_hit_rate > 0.5,
                "{}: {:.3}",
                row.name,
                row.l1_hit_rate
            );
            assert!(
                row.tainted_bytes > 0,
                "{} left no tainted footprint",
                row.name
            );
        }
        // At least the input-heavy workloads keep tainted lines resident.
        assert!(
            report
                .rows
                .iter()
                .any(|r| r.l1_tainted_lines > 0 || r.l2_tainted_lines > 0),
            "{report}"
        );
    }
}
