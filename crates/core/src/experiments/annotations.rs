//! The paper's §5.3 extension: *"One direction that can potentially reduce
//! the false negative rate is to sacrifice the transparency of the proposed
//! taintedness detection architecture. We can ask the programmer to
//! annotate important data structures that should never be tainted …
//! whenever an annotated structure becomes tainted, an alert is raised."*
//!
//! This experiment implements that extension
//! ([`Machine::taint_watch_symbol`]) and demonstrates that it closes the
//! Table 4(B) false negative: a buffer overflow corrupting an adjacent
//! authentication flag — invisible to pointer-taintedness detection because
//! the flag is only ever branched on — is caught the moment tainted bytes
//! land in the annotated flag.

use std::fmt;

use ptaint_cpu::SecurityAlert;
use ptaint_os::WorldConfig;

use crate::Machine;

/// The Table 4(B) scenario restated with file-scope state, so the
/// "important data structure" has a symbol the programmer can annotate.
pub const ANNOTATED_AUTH_SOURCE: &str = r#"
char password_buf[16];
int authenticated;          /* the annotated structure */

int check_password(char *pw) {
    return strcmp(pw, "letmein") == 0;
}

int main() {
    authenticated = 0;
    gets(password_buf);     /* overflow runs into `authenticated` */
    if (check_password(password_buf)) authenticated = 1;
    if (authenticated) {
        printf("ACCESS GRANTED\n");
        return 0;
    }
    printf("access denied\n");
    return 1;
}
"#;

/// The annotation experiment's result.
#[derive(Debug, Clone)]
pub struct AnnotationReport {
    /// Without annotation: did the attack succeed silently (the Table 4(B)
    /// false negative)?
    pub unannotated_missed: bool,
    /// With the annotation: the alert that stopped the attack.
    pub annotated_alert: Option<SecurityAlert>,
    /// With the annotation: do honest logins still work?
    pub benign_ok: bool,
}

/// The overflow input: 16 filler bytes, then a nonzero word lands in
/// `authenticated`.
#[must_use]
pub fn attack_input() -> Vec<u8> {
    let mut input = vec![b'x'; 16];
    input.extend_from_slice(b"AAAA\n");
    input
}

/// Runs the Table 4(B) attack without and with the §5.3 annotation.
///
/// # Panics
///
/// Panics if the scenario program fails to build.
#[must_use]
pub fn run_annotation_experiment() -> AnnotationReport {
    let machine = Machine::from_c(ANNOTATED_AUTH_SOURCE).expect("scenario builds");

    // 1. Unannotated: the false negative of Table 4(B).
    let out = machine
        .clone()
        .world(WorldConfig::new().stdin(attack_input()))
        .run();
    let unannotated_missed =
        !out.reason.is_detected() && out.stdout_text().contains("ACCESS GRANTED");

    // 2. Annotated: `authenticated` must never be tainted.
    let annotated = machine
        .clone()
        .taint_watch_symbol("authenticated", 4)
        .world(WorldConfig::new().stdin(attack_input()));
    let out = annotated.run();
    let annotated_alert = out.reason.alert().copied();

    // 3. The annotation must not fire on honest use (the program writes
    //    the flag with untainted constants).
    let benign = machine
        .taint_watch_symbol("authenticated", 4)
        .world(WorldConfig::new().stdin(b"letmein\n".to_vec()))
        .run();
    let benign_ok = !benign.reason.is_detected() && benign.stdout_text().contains("ACCESS GRANTED");

    AnnotationReport {
        unannotated_missed,
        annotated_alert,
        benign_ok,
    }
}

impl fmt::Display for AnnotationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§5.3 extension — programmer annotations on critical data"
        )?;
        writeln!(
            f,
            "  without annotation : attack {} (the Table 4(B) false negative)",
            if self.unannotated_missed {
                "succeeds silently"
            } else {
                "did not reproduce"
            }
        )?;
        match &self.annotated_alert {
            Some(alert) => {
                writeln!(f, "  with annotation    : DETECTED — {alert}")?;
            }
            None => writeln!(f, "  with annotation    : NOT detected (unexpected)")?,
        }
        writeln!(
            f,
            "  honest login       : {}",
            if self.benign_ok {
                "works, no alert"
            } else {
                "BROKEN"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_cpu::AlertKind;

    #[test]
    fn annotation_closes_the_table_4b_false_negative() {
        let report = run_annotation_experiment();
        assert!(report.unannotated_missed, "{report:?}");
        let alert = report.annotated_alert.expect("annotation detects");
        assert_eq!(alert.kind, AlertKind::AnnotationTainted);
        assert!(report.benign_ok, "{report:?}");
    }
}
