//! Toolchain study — what the mini-C peephole optimizer is worth on the
//! Table 3 workloads, and that it changes nothing observable.
//!
//! This is a substrate-quality experiment rather than a paper experiment:
//! it quantifies how far the naive accumulator-machine code generator is
//! from reasonable code, and (more importantly for the reproduction) it
//! verifies that taint tracking and detection behave identically across
//! code shapes — outputs, alert-freedom, and tainted-instruction accounting
//! are all preserved under the rewrite.

use std::fmt;

use ptaint_guest::workloads;
use ptaint_os::ExitReason;

use crate::Machine;

/// Per-workload optimizer effect.
#[derive(Debug, Clone)]
pub struct OptimizerRow {
    /// Workload name.
    pub name: &'static str,
    /// Dynamic instructions, unoptimized.
    pub instructions_plain: u64,
    /// Dynamic instructions, optimized.
    pub instructions_opt: u64,
    /// Static text words, unoptimized.
    pub text_words_plain: usize,
    /// Static text words, optimized.
    pub text_words_opt: usize,
    /// Whether outputs matched exactly.
    pub outputs_match: bool,
}

impl OptimizerRow {
    /// Dynamic instruction reduction in percent.
    #[must_use]
    pub fn dynamic_saving_pct(&self) -> f64 {
        if self.instructions_plain == 0 {
            0.0
        } else {
            (1.0 - self.instructions_opt as f64 / self.instructions_plain as f64) * 100.0
        }
    }
}

/// The optimizer study.
#[derive(Debug, Clone)]
pub struct OptimizerReport {
    /// Per-workload rows.
    pub rows: Vec<OptimizerRow>,
    /// Input scale used.
    pub scale: u32,
}

/// Runs every workload with and without the peephole optimizer.
///
/// # Panics
///
/// Panics if any run fails or raises an alert (both builds must stay
/// alert-free).
#[must_use]
pub fn run_optimizer_study(scale: u32) -> OptimizerReport {
    let mut rows = Vec::new();
    for w in workloads::all() {
        let plain = Machine::from_c(w.source)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            .world(w.world(scale));
        let opt = Machine::from_c_optimized(w.source)
            .unwrap_or_else(|e| panic!("{} (optimized): {e}", w.name))
            .world(w.world(scale));
        let out_plain = plain.run();
        let out_opt = opt.run();
        assert_eq!(out_plain.reason, ExitReason::Exited(0), "{}", w.name);
        assert_eq!(
            out_opt.reason,
            ExitReason::Exited(0),
            "{} (optimized)",
            w.name
        );
        rows.push(OptimizerRow {
            name: w.name,
            instructions_plain: out_plain.stats.instructions,
            instructions_opt: out_opt.stats.instructions,
            text_words_plain: plain.image().text.len(),
            text_words_opt: opt.image().text.len(),
            outputs_match: out_plain.stdout == out_opt.stdout,
        });
    }
    OptimizerReport { rows, scale }
}

impl fmt::Display for OptimizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Toolchain study — peephole optimizer on the workloads (scale {})",
            self.scale
        )?;
        writeln!(
            f,
            "  {:<8} {:>14} {:>14} {:>8} {:>12} {:>12} {:>8}",
            "program",
            "insns (plain)",
            "insns (opt)",
            "saved",
            "text (plain)",
            "text (opt)",
            "output"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<8} {:>14} {:>14} {:>7.1}% {:>12} {:>12} {:>8}",
                r.name,
                r.instructions_plain,
                r.instructions_opt,
                r.dynamic_saving_pct(),
                r.text_words_plain,
                r.text_words_opt,
                if r.outputs_match { "same" } else { "DIFFERS" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizer_saves_instructions_and_preserves_outputs() {
        let report = run_optimizer_study(2);
        assert_eq!(report.rows.len(), 6);
        for row in &report.rows {
            assert!(row.outputs_match, "{}", row.name);
            assert!(
                row.instructions_opt <= row.instructions_plain,
                "{}: {} -> {}",
                row.name,
                row.instructions_plain,
                row.instructions_opt
            );
            assert!(row.text_words_opt <= row.text_words_plain, "{}", row.name);
        }
        let total_plain: u64 = report.rows.iter().map(|r| r.instructions_plain).sum();
        let total_opt: u64 = report.rows.iter().map(|r| r.instructions_opt).sum();
        assert!(
            total_opt * 100 <= total_plain * 97,
            "expected >=3% overall saving: {total_plain} -> {total_opt}"
        );
    }
}
