//! Figure 3 — the architecture of the detectors inside the pipeline: the
//! jump detector after ID/EX, the load/store detector after EX/MEM, and
//! the security exception at retirement.
//!
//! The experiment drives two attacks through the 5-stage pipeline timing
//! model and reports *where* each was flagged and *when* the exception was
//! raised.

use std::fmt;

use ptaint_cpu::pipeline::{PipelineDetection, Stage};
use ptaint_cpu::DetectionPolicy;
use ptaint_guest::apps::synthetic;

use crate::Machine;

/// One pipeline detection walk.
#[derive(Debug, Clone)]
pub struct PipelineWalk {
    /// Which attack was driven through the pipeline.
    pub attack: &'static str,
    /// The detection record: stage of the malicious mark, mark cycle,
    /// retirement-exception cycle.
    pub detection: PipelineDetection,
}

/// The Figure 3 report: detector placement observed in action.
#[derive(Debug, Clone)]
pub struct Figure3Report {
    /// The jump-detector walk (exp1: tainted `jr $31`).
    pub jump_walk: PipelineWalk,
    /// The load/store-detector walk (exp2: tainted chunk link).
    pub data_walk: PipelineWalk,
}

/// Runs exp1 and exp2 through the pipeline model and captures the
/// detector staging.
///
/// # Panics
///
/// Panics if either attack goes undetected.
#[must_use]
pub fn run_pipeline_walk() -> Figure3Report {
    let exp1 = Machine::from_c(synthetic::EXP1_SOURCE)
        .expect("exp1 builds")
        .world(synthetic::exp1_attack_world())
        .policy(DetectionPolicy::PointerTaintedness);
    let (_, report1) = exp1.run_pipelined();
    let jump_detection = report1.detection.expect("exp1 detected in the pipeline");

    let exp2 = Machine::from_c(synthetic::EXP2_SOURCE)
        .expect("exp2 builds")
        .world(synthetic::exp2_attack_world())
        .policy(DetectionPolicy::PointerTaintedness);
    let (_, report2) = exp2.run_pipelined();
    let data_detection = report2.detection.expect("exp2 detected in the pipeline");

    Figure3Report {
        jump_walk: PipelineWalk {
            attack: "exp1: tainted return address reaches jr $31",
            detection: jump_detection,
        },
        data_walk: PipelineWalk {
            attack: "exp2: tainted chunk link dereferenced in free()",
            detection: data_detection,
        },
    }
}

fn stage_name(stage: Stage) -> &'static str {
    match stage {
        Stage::Fetch => "IF",
        Stage::Decode => "ID/EX latch",
        Stage::Execute => "EX/MEM latch",
        Stage::Memory => "MEM",
        Stage::Retire => "retirement",
    }
}

impl fmt::Display for Figure3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3 — detector placement in the 5-stage pipeline")?;
        for walk in [&self.jump_walk, &self.data_walk] {
            let d = &walk.detection;
            writeln!(f, "\n  {}", walk.attack)?;
            writeln!(f, "    alert          : {}", d.alert)?;
            writeln!(
                f,
                "    marked at      : after the {} (cycle {})",
                stage_name(d.marked_after),
                d.marked_cycle
            )?;
            writeln!(
                f,
                "    exception at   : retirement (cycle {})",
                d.exception_cycle
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detectors_sit_at_the_figure_3_stages() {
        let report = run_pipeline_walk();
        // Jump detector: after ID/EX, where the target register is read.
        assert_eq!(report.jump_walk.detection.marked_after, Stage::Decode);
        // Load/store detector: after EX/MEM, where the address is formed.
        assert_eq!(report.data_walk.detection.marked_after, Stage::Execute);
        // Exceptions are architectural: raised at retirement, after the mark.
        for walk in [&report.jump_walk, &report.data_walk] {
            assert!(
                walk.detection.exception_cycle > walk.detection.marked_cycle,
                "{walk:?}"
            );
        }
        let text = report.to_string();
        assert!(text.contains("ID/EX"), "{text}");
        assert!(text.contains("EX/MEM"), "{text}");
        assert!(text.contains("retirement"), "{text}");
    }
}
