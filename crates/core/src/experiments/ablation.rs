//! Ablation study — *why Table 1 has its special cases*.
//!
//! The paper motivates each non-generic propagation rule informally
//! (§4.2). This experiment removes them one at a time and measures the
//! effect on the two properties the evaluation cares about:
//!
//! * **false positives** — do the Table 3 workloads still run alert-free?
//! * **detection** — are the Figure 2 attacks still caught?
//!
//! Expected outcome (verified by the test):
//!
//! * removing **compare-untaint** breaks the workloads (validated input is
//!   never trusted, so input-derived indices trip the detector);
//! * removing the other rules keeps this suite green in both directions —
//!   they matter for *other* compiler idioms (register zeroing, masking,
//!   sub-byte flows) and are cheap insurance, which is itself an
//!   interesting empirical note about the design.

use std::fmt;

use ptaint_cpu::{DetectionPolicy, TaintRules};
use ptaint_guest::apps::synthetic;
use ptaint_guest::workloads;
use ptaint_os::ExitReason;

use crate::Machine;

/// Results for one rule-set variant.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name.
    pub variant: &'static str,
    /// The rule set used.
    pub rules: TaintRules,
    /// Workloads that raised a (false-positive) alert.
    pub workload_false_positives: Vec<&'static str>,
    /// Synthetic attacks that were still detected (of exp1..exp3).
    pub attacks_detected: usize,
    /// Total synthetic attacks run.
    pub attacks_total: usize,
}

/// The ablation study.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// One row per rule-set variant.
    pub rows: Vec<AblationRow>,
    /// Workload input scale used.
    pub scale: u32,
}

fn run_variant(variant: &'static str, rules: TaintRules, scale: u32) -> AblationRow {
    // False-positive side: the Table 3 workloads.
    let mut workload_false_positives = Vec::new();
    for w in workloads::all() {
        let out = Machine::from_c(w.source)
            .expect("workload builds")
            .world(w.world(scale))
            .taint_rules(rules)
            .policy(DetectionPolicy::PointerTaintedness)
            .run();
        match out.reason {
            ExitReason::Security(_) => workload_false_positives.push(w.name),
            ExitReason::Exited(0) => {}
            other => panic!("{}: unexpected outcome {other:?}", w.name),
        }
    }

    // Detection side: the synthetic attacks.
    let attacks: Vec<(&str, Machine)> = vec![
        (
            "exp1",
            Machine::from_c(synthetic::EXP1_SOURCE)
                .expect("exp1")
                .world(synthetic::exp1_attack_world()),
        ),
        (
            "exp2",
            Machine::from_c(synthetic::EXP2_SOURCE)
                .expect("exp2")
                .world(synthetic::exp2_attack_world()),
        ),
        (
            "exp3",
            Machine::from_c(synthetic::EXP3_SOURCE)
                .expect("exp3")
                .world(synthetic::exp3_attack_world(1)),
        ),
    ];
    let attacks_total = attacks.len();
    let attacks_detected = attacks
        .into_iter()
        .filter(|(_, m)| m.clone().taint_rules(rules).run().reason.is_detected())
        .count();

    AblationRow {
        variant,
        rules,
        workload_false_positives,
        attacks_detected,
        attacks_total,
    }
}

/// Runs the full ablation grid.
#[must_use]
pub fn run_ablation_study(scale: u32) -> AblationReport {
    let rows = vec![
        run_variant("paper (all rules)", TaintRules::PAPER, scale),
        run_variant(
            "no compare-untaint",
            TaintRules::without_compare_untaint(),
            scale,
        ),
        run_variant(
            "no AND-zero untaint",
            TaintRules::without_and_untaint(),
            scale,
        ),
        run_variant(
            "no xor-idiom untaint",
            TaintRules::without_xor_idiom(),
            scale,
        ),
        run_variant("no shift smear", TaintRules::without_shift_smear(), scale),
        run_variant("generic OR only", TaintRules::GENERIC_ONLY, scale),
    ];
    AblationReport { rows, scale }
}

impl fmt::Display for AblationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — Table 1 special cases, removed one at a time (workload scale {})",
            self.scale
        )?;
        writeln!(
            f,
            "  {:<22} {:>16} {:>22}",
            "variant", "attacks caught", "workload false pos."
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<22} {:>13}/{:<2} {:>22}",
                r.variant,
                r.attacks_detected,
                r.attacks_total,
                if r.workload_false_positives.is_empty() {
                    "none".to_owned()
                } else {
                    r.workload_false_positives.join(",")
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_untaint_is_load_bearing_for_false_positives() {
        let report = run_ablation_study(2);
        let paper = &report.rows[0];
        assert!(paper.workload_false_positives.is_empty(), "{report}");
        assert_eq!(paper.attacks_detected, paper.attacks_total, "{report}");

        let no_compare = &report.rows[1];
        assert!(
            !no_compare.workload_false_positives.is_empty(),
            "removing compare-untaint must cause workload false positives\n{report}"
        );
        // Detection must never get weaker when propagation gets stronger.
        assert_eq!(no_compare.attacks_detected, no_compare.attacks_total);

        // The maximally conservative variant detects everything too (and
        // floods with false positives).
        let generic = report.rows.last().unwrap();
        assert_eq!(generic.attacks_detected, generic.attacks_total);
        assert!(!generic.workload_false_positives.is_empty());
    }
}
