//! §5.1 — the security-coverage comparison: every attack in the suite run
//! under all three policies (unprotected, control-data-only protection in
//! the style of Minos/Secure Program Execution, and full pointer
//! taintedness detection).
//!
//! The paper's headline: control-flow integrity baselines detect the
//! control-data attack but miss every non-control-data attack; pointer
//! taintedness detection catches both kinds.

use std::fmt;

use ptaint_asm::Image;
use ptaint_cpu::DetectionPolicy;
use ptaint_guest::apps::{
    calibrate_format_pad, dispatchd, ghttpd, globd, null_httpd, run_app, synthetic, traceroute,
    wu_ftpd,
};
use ptaint_os::{ExitReason, RunOutcome, WorldConfig};

/// How a run under one policy ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageOutcome {
    /// The detector stopped the attack (the desired outcome).
    Detected,
    /// The attack achieved its goal (privilege escalation, policy bypass…).
    Compromised,
    /// The attack crashed the victim (denial of service, undetected).
    Crashed,
    /// The program finished without visible compromise.
    CleanExit,
}

impl CoverageOutcome {
    fn short(self) -> &'static str {
        match self {
            CoverageOutcome::Detected => "DETECTED",
            CoverageOutcome::Compromised => "compromised",
            CoverageOutcome::Crashed => "crashed",
            CoverageOutcome::CleanExit => "clean",
        }
    }
}

/// Attack classification per the paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackClass {
    /// Corrupts control data (return addresses, code pointers).
    ControlData,
    /// Corrupts only non-control data (UIDs, config strings, data
    /// pointers).
    NonControlData,
}

impl fmt::Display for AttackClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AttackClass::ControlData => "control-data",
            AttackClass::NonControlData => "non-control-data",
        })
    }
}

/// One attack × three policies.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// Attack name.
    pub attack: &'static str,
    /// Control-data or non-control-data.
    pub class: AttackClass,
    /// Outcome with no protection.
    pub unprotected: CoverageOutcome,
    /// Outcome under the Minos-style control-only baseline.
    pub control_only: CoverageOutcome,
    /// Outcome under full pointer taintedness detection.
    pub pointer_taintedness: CoverageOutcome,
}

/// The full §5.1 coverage matrix.
#[derive(Debug, Clone)]
pub struct CoverageMatrix {
    /// One row per attack.
    pub rows: Vec<CoverageRow>,
}

impl CoverageMatrix {
    /// The paper's claim, as a predicate: full detection catches every
    /// attack; the control-only baseline catches exactly the control-data
    /// attacks; nothing is caught unprotected.
    #[must_use]
    pub fn matches_paper_claims(&self) -> bool {
        self.rows.iter().all(|r| {
            let full_ok = r.pointer_taintedness == CoverageOutcome::Detected;
            let baseline_ok = match r.class {
                AttackClass::ControlData => r.control_only == CoverageOutcome::Detected,
                AttackClass::NonControlData => r.control_only != CoverageOutcome::Detected,
            };
            let unprotected_ok = r.unprotected != CoverageOutcome::Detected;
            full_ok && baseline_ok && unprotected_ok
        })
    }
}

/// Classifies one run's outcome, given an attack-specific compromise
/// marker looked for in the network transcripts and stdout.
fn classify(outcome: &RunOutcome, compromise_marker: Option<&str>) -> CoverageOutcome {
    match &outcome.reason {
        ExitReason::Security(_) => CoverageOutcome::Detected,
        ExitReason::MemFault(_)
        | ExitReason::DecodeFault(_)
        | ExitReason::BreakTrap(_)
        | ExitReason::GuestFault(_)
        | ExitReason::ReplayDivergence(_) => CoverageOutcome::Crashed,
        ExitReason::Exited(_) | ExitReason::StepLimit | ExitReason::Watchdog => {
            if let Some(marker) = compromise_marker {
                let mut all = outcome.stdout_text();
                for t in &outcome.transcripts {
                    all.push_str(&String::from_utf8_lossy(t));
                }
                if all.contains(marker) {
                    return CoverageOutcome::Compromised;
                }
            }
            CoverageOutcome::CleanExit
        }
    }
}

struct AttackSpec {
    name: &'static str,
    class: AttackClass,
    image: Image,
    world: WorldConfig,
    compromise_marker: Option<&'static str>,
}

fn attack_suite() -> Vec<AttackSpec> {
    let exp1 = ptaint_guest::build(synthetic::EXP1_SOURCE).expect("exp1");
    let exp2 = ptaint_guest::build(synthetic::EXP2_SOURCE).expect("exp2");
    let exp3 = ptaint_guest::build(synthetic::EXP3_SOURCE).expect("exp3");
    let exp3_pad = calibrate_format_pad(&exp3, synthetic::exp3_attack_world, 0x6463_6261, 16)
        .expect("exp3 calibrates");
    let ftpd = ptaint_guest::build(wu_ftpd::SOURCE).expect("wu_ftpd");
    let uid = wu_ftpd::uid_address(&ftpd);
    let ftpd_pad = calibrate_format_pad(&ftpd, |p| wu_ftpd::attack_world(&ftpd, p), uid, 48)
        .expect("wu_ftpd calibrates");
    let httpd = ptaint_guest::build(null_httpd::SOURCE).expect("null_httpd");
    let ghttpd_img = ptaint_guest::build(ghttpd::SOURCE).expect("ghttpd");
    let tracer = ptaint_guest::build(traceroute::SOURCE).expect("traceroute");
    let glob = ptaint_guest::build(globd::SOURCE).expect("globd");
    let dispatch = ptaint_guest::build(dispatchd::SOURCE).expect("dispatchd");

    vec![
        AttackSpec {
            name: "exp1 stack smash (ret addr)",
            class: AttackClass::ControlData,
            world: synthetic::exp1_attack_world(),
            image: exp1,
            compromise_marker: None,
        },
        AttackSpec {
            name: "exp2 heap chunk links",
            class: AttackClass::NonControlData,
            world: synthetic::exp2_attack_world(),
            image: exp2,
            compromise_marker: None,
        },
        AttackSpec {
            name: "exp3 format string %n",
            class: AttackClass::NonControlData,
            world: synthetic::exp3_attack_world(exp3_pad),
            image: exp3,
            compromise_marker: None,
        },
        AttackSpec {
            name: "WU-FTPD uid overwrite",
            class: AttackClass::NonControlData,
            world: wu_ftpd::attack_world(&ftpd, ftpd_pad),
            image: ftpd,
            compromise_marker: Some("226 transfer complete"),
        },
        AttackSpec {
            name: "NULL HTTPD cgi-root retarget",
            class: AttackClass::NonControlData,
            world: null_httpd::attack_world(&httpd),
            image: httpd,
            compromise_marker: Some("EXEC /bin/sh"),
        },
        AttackSpec {
            name: "GHTTPD url-pointer corrupt",
            class: AttackClass::NonControlData,
            world: ghttpd::attack_world(&ghttpd_img),
            image: ghttpd_img,
            compromise_marker: Some("EXEC /cgi-bin/../../../../bin/sh"),
        },
        AttackSpec {
            name: "traceroute double free",
            class: AttackClass::NonControlData,
            world: traceroute::attack_world(),
            image: tracer,
            compromise_marker: None,
        },
        AttackSpec {
            name: "globd ~user heap overflow",
            class: AttackClass::NonControlData,
            world: globd::attack_world(),
            image: glob,
            compromise_marker: None,
        },
        AttackSpec {
            name: "dispatchd fn-ptr overwrite",
            class: AttackClass::ControlData,
            world: dispatchd::attack_world(),
            image: dispatch,
            compromise_marker: None,
        },
    ]
}

/// Runs the complete attack suite under all three policies (27 runs, plus
/// the calibration probes).
#[must_use]
pub fn run_coverage_matrix() -> CoverageMatrix {
    let rows = attack_suite()
        .into_iter()
        .map(|spec| {
            let outcome_for = |policy| {
                let out = run_app(&spec.image, spec.world.clone(), policy);
                classify(&out, spec.compromise_marker)
            };
            CoverageRow {
                attack: spec.name,
                class: spec.class,
                unprotected: outcome_for(DetectionPolicy::Off),
                control_only: outcome_for(DetectionPolicy::ControlOnly),
                pointer_taintedness: outcome_for(DetectionPolicy::PointerTaintedness),
            }
        })
        .collect();
    CoverageMatrix { rows }
}

impl fmt::Display for CoverageMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§5.1 — security coverage: attacks × protection policies")?;
        writeln!(
            f,
            "  {:<30} {:<17} {:<12} {:<12} {:<12}",
            "attack", "class", "unprotected", "control-only", "ptaint"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<30} {:<17} {:<12} {:<12} {:<12}",
                r.attack,
                r.class.to_string(),
                r.unprotected.short(),
                r.control_only.short(),
                r.pointer_taintedness.short()
            )?;
        }
        writeln!(
            f,
            "\n  paper's claim (full detection catches all; control-only \
             catches only control-data): {}",
            if self.matches_paper_claims() {
                "REPRODUCED"
            } else {
                "NOT reproduced"
            }
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_matrix_reproduces_the_papers_claims() {
        let matrix = run_coverage_matrix();
        assert_eq!(matrix.rows.len(), 9);
        assert!(matrix.matches_paper_claims(), "{matrix}");

        // Full detection catches every attack.
        for r in &matrix.rows {
            assert_eq!(
                r.pointer_taintedness,
                CoverageOutcome::Detected,
                "{}",
                r.attack
            );
        }
        // Both control-data attacks (return address and function pointer)
        // are caught by the control-only baseline.
        let control: Vec<_> = matrix
            .rows
            .iter()
            .filter(|r| r.class == AttackClass::ControlData)
            .collect();
        assert_eq!(control.len(), 2);
        for row in control {
            assert_eq!(
                row.control_only,
                CoverageOutcome::Detected,
                "{}",
                row.attack
            );
        }
        // The daemons are genuinely compromised when unprotected.
        let compromised = matrix
            .rows
            .iter()
            .filter(|r| r.unprotected == CoverageOutcome::Compromised)
            .count();
        assert!(compromised >= 3, "{matrix}");
    }
}
