//! The top-level machine builder.

use std::rc::Rc;
use std::time::Duration;

use ptaint_asm::Image;
use ptaint_cpu::pipeline::{Pipeline, PipelineReport};
use ptaint_cpu::{Cpu, DetectionPolicy, Engine, TaintRules};
use ptaint_guest::BuildError;
use ptaint_inject::{CampaignReport, CampaignSpec, Fault, FaultKind, StateInjector, TrialRun};
use ptaint_mem::HierarchyConfig;
use ptaint_os::{
    load_with_observer, run_to_exit_with, Os, RunLimits, RunOutcome, SyscallJournal, WorldConfig,
};
use ptaint_profile::{EventProfile, ProfileReport, SymbolTable};
use ptaint_trace::{Event, Observer, SharedObserver, TraceConfig, TraceHub, TraceReport};
use std::cell::RefCell;

/// A configured guest machine: program image, outside world, detection
/// policy, and memory hierarchy. Each [`Machine::run`] boots a fresh
/// instance, so one `Machine` can be run many times (e.g. under different
/// payload calibrations).
///
/// ```
/// use ptaint::{Machine, WorldConfig};
///
/// let m = Machine::from_c(r#"int main() { printf("hi\n"); return 0; }"#)?;
/// assert_eq!(m.run().stdout_text(), "hi\n");
/// # Ok::<(), ptaint::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    image: Image,
    world: WorldConfig,
    policy: DetectionPolicy,
    hierarchy: HierarchyConfig,
    rules: TaintRules,
    watches: Vec<(u32, u32, String)>,
    step_limit: u64,
    watchdog: Option<Duration>,
    trace_depth: Option<usize>,
    engine: Engine,
    elide_checks: bool,
    fork_trials: bool,
    analysis_cache: Option<std::path::PathBuf>,
    analysis_jobs: Option<usize>,
    /// Memoized `(analysis, cached)` result shared across clones — populated
    /// by the sharded campaign runner so per-worker boots don't each re-run
    /// the static analysis.
    prepared_analysis: Option<std::sync::Arc<(ptaint_analyze::Analysis, bool)>>,
}

impl Machine {
    /// Default step budget (ample for every program in this workspace).
    pub const DEFAULT_STEP_LIMIT: u64 = 500_000_000;

    /// Compiles a mini-C program (linked against the guest libc and
    /// runtime) into a machine.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when compilation or assembly fails.
    pub fn from_c(source: &str) -> Result<Machine, BuildError> {
        Ok(Machine::from_image(ptaint_guest::build(source)?))
    }

    /// Like [`Machine::from_c`], with the mini-C peephole optimizer enabled.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when compilation or assembly fails.
    pub fn from_c_optimized(source: &str) -> Result<Machine, BuildError> {
        Ok(Machine::from_image(ptaint_guest::build_optimized(source)?))
    }

    /// Assembles a bare-metal assembly program (no libc) into a machine.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when assembly fails.
    pub fn from_asm(source: &str) -> Result<Machine, BuildError> {
        Ok(Machine::from_image(ptaint_asm::assemble(source)?))
    }

    /// Wraps an already-built image.
    #[must_use]
    pub fn from_image(image: Image) -> Machine {
        Machine {
            image,
            world: WorldConfig::new(),
            policy: DetectionPolicy::PointerTaintedness,
            hierarchy: HierarchyConfig::flat(),
            rules: TaintRules::PAPER,
            watches: Vec::new(),
            step_limit: Machine::DEFAULT_STEP_LIMIT,
            watchdog: None,
            trace_depth: None,
            engine: Engine::default(),
            elide_checks: false,
            fork_trials: true,
            analysis_cache: None,
            analysis_jobs: None,
            prepared_analysis: None,
        }
    }

    /// Selects the execution engine (default: the predecoded/cached engine;
    /// [`Engine::Interp`] keeps the legacy interpreter available as the
    /// differential-testing oracle).
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Machine {
        self.engine = engine;
        self
    }

    /// Sets the taint-propagation rule set (default: the paper's Table 1;
    /// ablated variants via [`TaintRules`]).
    #[must_use]
    pub fn taint_rules(mut self, rules: TaintRules) -> Machine {
        self.rules = rules;
        self
    }

    /// Adds a §5.3 programmer annotation on the *global symbol* `name`:
    /// execution stops as soon as any of its `len` bytes becomes tainted.
    ///
    /// # Panics
    ///
    /// Panics when the symbol is not defined by the program.
    #[must_use]
    pub fn taint_watch_symbol(mut self, name: &str, len: u32) -> Machine {
        let addr = self
            .image
            .symbol(name)
            .unwrap_or_else(|| panic!("no such symbol `{name}` to annotate"));
        self.watches.push((addr, len, name.to_owned()));
        self
    }

    /// Enables static check elision: each boot runs the
    /// [`ptaint_analyze`] taint dataflow over the image and hands the
    /// proven-clean sites to the cached engine, which then skips the
    /// pointer-taintedness probe at those sites.
    ///
    /// Elision is armed only under the exact configuration the analysis
    /// models — [`DetectionPolicy::PointerTaintedness`] with the paper's
    /// [`TaintRules::PAPER`] — and only the cached engine consults the
    /// proven set (the interpreter stays the unelided oracle). Any store
    /// into the text segment voids the whole set for the rest of the run.
    #[must_use]
    pub fn elide_checks(mut self, on: bool) -> Machine {
        self.elide_checks = on;
        self
    }

    /// Points boots at a persistent analysis-proof cache directory
    /// (`ptaint-proofs v1` entries, content-addressed by image hash): a
    /// warm boot loads the proven set in milliseconds instead of re-running
    /// the whole-program fixpoint, and a cold boot stores its result for
    /// the next one. A corrupt or unreadable entry is reported on stderr
    /// and falls back to cold analysis — it never panics and never
    /// silently serves stale proofs (the content hash covers the analyzer
    /// version and every image byte).
    #[must_use]
    pub fn analysis_cache(mut self, dir: impl Into<std::path::PathBuf>) -> Machine {
        self.analysis_cache = Some(dir.into());
        self
    }

    /// Sets the static-analysis worker count (default:
    /// [`ptaint_analyze::default_jobs`]). The analysis result is
    /// byte-identical for any value; this only trades wall-clock time.
    #[must_use]
    pub fn analysis_jobs(mut self, jobs: usize) -> Machine {
        self.analysis_jobs = Some(jobs.max(1));
        self
    }

    /// Sets the outside world (stdin, files, network sessions, argv/envp).
    #[must_use]
    pub fn world(mut self, world: WorldConfig) -> Machine {
        self.world = world;
        self
    }

    /// Sets the detection policy (default: full pointer taintedness).
    #[must_use]
    pub fn policy(mut self, policy: DetectionPolicy) -> Machine {
        self.policy = policy;
        self
    }

    /// Sets the cache hierarchy (default: no caches).
    #[must_use]
    pub fn hierarchy(mut self, hierarchy: HierarchyConfig) -> Machine {
        self.hierarchy = hierarchy;
        self
    }

    /// Sets the step budget.
    #[must_use]
    pub fn step_limit(mut self, limit: u64) -> Machine {
        self.step_limit = limit;
        self
    }

    /// Arms a wall-clock watchdog: runs exceeding `limit` stop with
    /// [`ptaint_os::ExitReason::Watchdog`] instead of spinning until the
    /// step budget.
    /// Off by default — campaign reports stay deterministic when only the
    /// (deterministic) step budget can end a hung run.
    #[must_use]
    pub fn watchdog(mut self, limit: Duration) -> Machine {
        self.watchdog = Some(limit);
        self
    }

    fn limits(&self) -> RunLimits {
        RunLimits {
            max_steps: self.step_limit,
            watchdog: self.watchdog,
        }
    }

    /// Sets the depth of the CPU's recently-retired diagnostic ring (default
    /// [`ptaint_cpu::DEFAULT_TRACE_DEPTH`]) — the tail reported by
    /// [`Machine::run_traced`] and the CLI's alert report.
    #[must_use]
    pub fn trace_depth(mut self, depth: usize) -> Machine {
        self.trace_depth = Some(depth);
        self
    }

    /// The program image (symbol table, segments) — payload builders use
    /// this to locate attack targets.
    #[must_use]
    pub fn image(&self) -> &Image {
        &self.image
    }

    fn boot(&self) -> (Cpu, Os) {
        self.boot_with(None)
    }

    fn boot_with(&self, observer: Option<SharedObserver>) -> (Cpu, Os) {
        let (mut cpu, os) = load_with_observer(
            &self.image,
            self.world.clone(),
            self.policy,
            self.hierarchy,
            observer,
        );
        cpu.set_taint_rules(self.rules);
        cpu.set_engine(self.engine);
        if let Some(depth) = self.trace_depth {
            cpu.set_trace_depth(depth);
        }
        for (addr, len, label) in &self.watches {
            cpu.add_taint_watch(*addr, *len, label.clone());
        }
        if self.elision_armed() {
            let (analysis, cached) = self.analysis();
            if cpu.has_observer() {
                cpu.emit_event(&Event::StaticAnalysis {
                    functions: analysis.stats.functions as u64,
                    blocks: analysis.stats.blocks as u64,
                    proven: analysis.proven.len() as u64,
                    flagged: analysis.stats.flagged_sites as u64,
                    cached,
                });
            }
            // Watch the whole analyzed program — text *plus* the loader's
            // exit stub, which the analyzer treats as code — not just the
            // pages the decode cache has predecoded: a store into a
            // never-executed text (or stub) page must still void the proven
            // set before it can mislead anyone. Without the stub bytes, a
            // text segment that is an exact page multiple would leave the
            // stub on an unwatched page.
            cpu.mem_mut().watch_code_range(
                self.image.text_base,
                self.image.text.len() as u32 * 4 + ptaint_os::EXIT_STUB_BYTES,
            );
            cpu.install_proven_checks(analysis.proven.iter().copied());
        }
        (cpu, os)
    }

    /// Eagerly runs (and memoizes) the static analysis this machine's
    /// boots would perform, so every subsequent boot — including each
    /// campaign shard worker's snapshot — reuses the result instead of
    /// re-analyzing. Clones share the memo. A no-op when elision is not
    /// armed (plain boots never consult the analysis).
    #[must_use]
    pub fn prepare_analysis(mut self) -> Machine {
        if self.elision_armed() && self.prepared_analysis.is_none() {
            self.prepared_analysis = Some(std::sync::Arc::new(self.analysis()));
        }
        self
    }

    /// Whether boots of this machine arm static check elision — the exact
    /// configuration the analysis models (pointer-taintedness policy under
    /// the paper's taint rules).
    fn elision_armed(&self) -> bool {
        self.elide_checks
            && self.policy == DetectionPolicy::PointerTaintedness
            && self.rules == TaintRules::PAPER
    }

    /// Produces the image's static analysis per the builder's cache and
    /// worker settings, reporting whether it was served from the proof
    /// cache. A cold run stores its result when a cache directory is set;
    /// a corrupt entry warns on stderr and falls back to cold analysis.
    #[must_use]
    pub fn analysis(&self) -> (ptaint_analyze::Analysis, bool) {
        if let Some(prepared) = &self.prepared_analysis {
            return (prepared.0.clone(), prepared.1);
        }
        if let Some(dir) = &self.analysis_cache {
            match ptaint_analyze::cache::load(dir, &self.image) {
                Ok(Some(a)) => return (a, true),
                Ok(None) => {}
                Err(e) => {
                    eprintln!("warning: analysis cache entry unusable, re-analyzing: {e}");
                }
            }
        }
        let a = match self.analysis_jobs {
            Some(jobs) => ptaint_analyze::analyze_with(&self.image, jobs),
            None => ptaint_analyze::analyze(&self.image),
        };
        if let Some(dir) = &self.analysis_cache {
            if let Err(e) = ptaint_analyze::cache::store(dir, &self.image, &a) {
                eprintln!("warning: analysis cache entry not written: {e}");
            }
        }
        (a, false)
    }

    /// Boots a fresh instance and runs it to completion.
    #[must_use]
    pub fn run(&self) -> RunOutcome {
        let (mut cpu, mut os) = self.boot();
        run_to_exit_with(&mut cpu, &mut os, self.limits(), &mut ())
    }

    /// Boots a fresh instance and runs it under one injected [`Fault`]:
    /// I/O kinds are scheduled on the kernel, state kinds armed as a
    /// [`StateInjector`] step hook. Returns the trial result the campaign
    /// classifier consumes.
    #[must_use]
    pub fn run_injected(&self, fault: &Fault) -> TrialRun {
        if fault.kind == FaultKind::ProofCache {
            return self.run_proof_cache_trial(fault);
        }
        let (mut cpu, mut os) = self.boot();
        os.set_io_faults(fault.io_plan());
        let mut injector = StateInjector::new(*fault);
        let outcome = run_to_exit_with(&mut cpu, &mut os, self.limits(), &mut injector);
        TrialRun {
            outcome,
            io_calls: os.io_call_count(),
            applied: injector.applied().map(str::to_owned),
        }
    }

    /// A [`FaultKind::ProofCache`] trial: flip one salt-chosen bit of the
    /// on-disk `ptaint-proofs v1` entry *before* boot, then run normally.
    /// The corrupted copy lives in a private temp directory so the real
    /// cache (shared by concurrent trials) is never touched. The entry's
    /// content checksum makes the corrupt load fail, which the boot path
    /// reports on stderr and survives by re-running the cold analysis —
    /// that graceful fallback is exactly what this fault class probes. The
    /// fault is inert (a plain fault-free run) when the machine has no
    /// proof cache configured, elision is not armed, or no entry exists
    /// yet on disk.
    fn run_proof_cache_trial(&self, fault: &Fault) -> TrialRun {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

        let entry = self.analysis_cache.as_ref().and_then(|dir| {
            let path = ptaint_analyze::cache::path_for(dir, &self.image);
            std::fs::read(path).ok()
        });
        let (Some(mut bytes), true) = (entry, self.elision_armed()) else {
            // Inert: nothing persistent to corrupt. Run fault-free.
            let (mut cpu, mut os) = self.boot();
            let outcome = run_to_exit_with(&mut cpu, &mut os, self.limits(), &mut ());
            return TrialRun {
                outcome,
                io_calls: os.io_call_count(),
                applied: None,
            };
        };

        let total = (bytes.len() as u64) * 8;
        let bit = ptaint_inject::SplitMix64::new(fault.salt).below(total.max(1));
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);

        let tmp = std::env::temp_dir().join(format!(
            "ptaint-proofcache-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&tmp).expect("proof-cache fault temp dir");
        std::fs::write(ptaint_analyze::cache::path_for(&tmp, &self.image), bytes)
            .expect("proof-cache fault entry copy");

        let mut victim = self.clone();
        victim.analysis_cache = Some(tmp.clone());
        victim.prepared_analysis = None;
        let (mut cpu, mut os) = victim.boot();
        cpu.note_injected_fault();
        let outcome = run_to_exit_with(&mut cpu, &mut os, self.limits(), &mut ());
        let run = TrialRun {
            outcome,
            io_calls: os.io_call_count(),
            // Deterministic and path-free, so reports shard-merge cleanly.
            applied: Some(format!("proofs entry bit {bit} of {total} flipped")),
        };
        let _ = std::fs::remove_dir_all(&tmp);
        run
    }

    /// Selects how [`Machine::run_campaign`] provisions each trial
    /// (default: `true`). With forking on, the campaign boots **once**,
    /// snapshots the post-boot baseline, and copy-on-write-forks every
    /// trial from it; with forking off, every trial reboots from `_start`
    /// (the legacy path, kept as the determinism oracle and benchmark
    /// baseline). Both modes produce byte-identical reports — pinned by
    /// tests and the CI fork-determinism gate.
    #[must_use]
    pub fn fork_trials(mut self, on: bool) -> Machine {
        self.fork_trials = on;
        self
    }

    /// Boots a fresh instance and captures it, pre-execution, as a
    /// [`MachineSnapshot`]: the post-boot baseline that campaign trials
    /// (and any other caller) can cheaply [`MachineSnapshot::fork`] from.
    #[must_use]
    pub fn snapshot(&self) -> MachineSnapshot {
        self.snapshot_with(None)
    }

    /// Like [`Machine::snapshot`], attaching `observer` to the snapshot's
    /// timeline and announcing the capture with an
    /// [`Event::Snapshot`](ptaint_trace::Event) carrying the resident page
    /// count. Each later fork is announced on the same stream.
    #[must_use]
    pub fn snapshot_with(&self, observer: Option<SharedObserver>) -> MachineSnapshot {
        let (cpu, os) = self.boot_with(observer);
        if cpu.has_observer() {
            cpu.emit_event(&Event::Snapshot {
                pages: cpu.mem().memory().page_count() as u64,
            });
        }
        MachineSnapshot {
            cpu,
            os,
            limits: self.limits(),
        }
    }

    /// Boots a fresh instance, records every serviced syscall into a
    /// [`SyscallJournal`], and runs to completion. The journal replays the
    /// run instruction-exactly via [`Machine::replay`] — including on a
    /// machine whose world has been stripped — for forensics over the
    /// paper's provenance chains.
    #[must_use]
    pub fn record(&self) -> (RunOutcome, SyscallJournal) {
        let (mut cpu, mut os) = self.boot();
        os.start_recording();
        let outcome = run_to_exit_with(&mut cpu, &mut os, self.limits(), &mut ());
        let journal = os.take_journal().unwrap_or_default();
        (outcome, journal)
    }

    /// Boots a fresh instance and re-serves `journal` byte-exactly instead
    /// of consulting the world. A guest that departs from the journal stops
    /// with [`ptaint_os::ExitReason::ReplayDivergence`] — a structured
    /// outcome, never a panic.
    #[must_use]
    pub fn replay(&self, journal: SyscallJournal) -> RunOutcome {
        let (mut cpu, mut os) = self.boot();
        os.start_replay(journal);
        run_to_exit_with(&mut cpu, &mut os, self.limits(), &mut ())
    }

    /// Runs a whole fault-injection campaign against this workload: one
    /// fault-free baseline plus `spec.trials` seeded injections, classified
    /// against the baseline's verdict. Trials fork copy-on-write from a
    /// single post-boot snapshot by default; [`Machine::fork_trials`]`(false)`
    /// reboots each trial from `_start` instead. The report is byte-
    /// identical either way.
    #[must_use]
    pub fn run_campaign(&self, spec: &CampaignSpec) -> CampaignReport {
        if self.fork_trials {
            let snap = self.snapshot();
            return ptaint_inject::run_campaign(spec, |fault| match fault {
                // Proof-cache corruption happens *before* boot, so it can
                // never ride a post-boot fork — reboot that trial instead.
                Some(f) if f.kind == FaultKind::ProofCache => self.run_injected(f),
                Some(f) => snap.run_injected(f),
                None => snap.run(),
            });
        }
        ptaint_inject::run_campaign(spec, |fault| match fault {
            Some(f) => self.run_injected(f),
            None => {
                let (mut cpu, mut os) = self.boot();
                let outcome = run_to_exit_with(&mut cpu, &mut os, self.limits(), &mut ());
                TrialRun {
                    outcome,
                    io_calls: os.io_call_count(),
                    applied: None,
                }
            }
        })
    }

    /// The sharded counterpart of [`Machine::run_campaign`]: trials are
    /// distributed across `jobs` worker threads, each of which boots its
    /// own post-boot baseline (boots are deterministic, so every worker's
    /// snapshot is bit-identical) and steals trial indices from a shared
    /// counter. Records merge in trial order, so the report is
    /// **byte-identical** to the single-threaded one for the same spec —
    /// `jobs <= 1` simply delegates to [`Machine::run_campaign`].
    ///
    /// When elision is armed the static analysis is memoized once up
    /// front and shared read-only with every worker, so the per-worker
    /// boot cost is a snapshot, not a re-analysis.
    #[must_use]
    pub fn run_campaign_jobs(&self, spec: &CampaignSpec, jobs: usize) -> CampaignReport {
        if jobs <= 1 {
            return self.run_campaign(spec);
        }
        let prepared = self.clone().prepare_analysis();
        let m = &prepared;
        ptaint_inject::run_campaign_jobs(spec, jobs, || {
            let snap = m.fork_trials.then(|| m.snapshot());
            move |fault: Option<&Fault>| match (fault, &snap) {
                (Some(f), _) if f.kind == FaultKind::ProofCache => m.run_injected(f),
                (Some(f), Some(snap)) => snap.run_injected(f),
                (Some(f), None) => m.run_injected(f),
                (None, Some(snap)) => snap.run(),
                (None, None) => {
                    let (mut cpu, mut os) = m.boot();
                    let outcome = run_to_exit_with(&mut cpu, &mut os, m.limits(), &mut ());
                    TrialRun {
                        outcome,
                        io_calls: os.io_call_count(),
                        applied: None,
                    }
                }
            }
        })
    }

    /// Runs twice under the cached engine — once with every check executed,
    /// once with statically proven checks elided — and asserts the two runs
    /// are bit-identical in everything guest-visible: exit reason (including
    /// any security alert), stdout/stderr, network transcripts, and the
    /// retired-instruction statistics (engine-activity counters normalized
    /// away with [`ExecStats::without_decode_cache`](ptaint_cpu::ExecStats::without_decode_cache)).
    ///
    /// Returns the elided outcome so callers can make scenario-specific
    /// assertions (e.g. that elision actually fired).
    ///
    /// # Panics
    ///
    /// Panics when the runs diverge — i.e. when the static analysis proved
    /// a site clean that was not.
    #[must_use]
    pub fn run_elision_differential(&self) -> RunOutcome {
        let full = self.clone().elide_checks(false).run();
        let elided = self.clone().elide_checks(true).run();
        assert_eq!(
            full.stats.elided_checks, 0,
            "elision leaked into the oracle"
        );
        let mut a = full;
        a.stats = a.stats.without_decode_cache();
        let mut b = elided.clone();
        b.stats = b.stats.without_decode_cache();
        assert_eq!(a, b, "check elision changed observable behaviour");
        elided
    }

    /// Boots a fresh instance and runs it through the 5-stage pipeline
    /// timing model (Figure 3), returning both the functional outcome and
    /// the cycle-level report (detection staging, stalls, IPC).
    #[must_use]
    pub fn run_pipelined(&self) -> (RunOutcome, PipelineReport) {
        let (cpu, mut os) = self.boot();
        let mut pipe = Pipeline::new(cpu);
        let outcome = run_to_exit_with(&mut pipe, &mut os, self.limits(), &mut ());
        (outcome, pipe.report())
    }

    /// Runs to completion and returns the outcome together with a
    /// disassembled tail of the execution (the most recently retired
    /// instructions, oldest first) — the `--trace` view of `ptaint-run`.
    #[must_use]
    pub fn run_traced(&self) -> (RunOutcome, Vec<String>) {
        let (mut cpu, mut os) = self.boot();
        let outcome = run_to_exit_with(&mut cpu, &mut os, self.limits(), &mut ());
        let trace = self.render_tail(&cpu);
        (outcome, trace)
    }

    /// Boots with the observability sinks `cfg` enables, runs to completion,
    /// and returns the outcome, the disassembled execution tail, and the
    /// collected [`TraceReport`] (JSONL stream, metrics, forensic chain).
    ///
    /// With every sink disabled this is equivalent to [`Machine::run_traced`]
    /// plus an empty report — no observer is attached at all.
    #[must_use]
    pub fn run_with_trace(&self, cfg: &TraceConfig) -> (RunOutcome, Vec<String>, TraceReport) {
        if !cfg.any() {
            let (outcome, tail) = self.run_traced();
            return (outcome, tail, TraceReport::default());
        }
        let hub = TraceHub::shared(cfg);
        let observer: SharedObserver = hub.clone();
        let (mut cpu, mut os) = self.boot_with(Some(observer));
        let outcome = run_to_exit_with(&mut cpu, &mut os, self.limits(), &mut ());
        let tail = self.render_tail(&cpu);
        // Release the emulator's observer handles so the hub is uniquely
        // owned again and can be consumed into its report.
        drop(cpu);
        drop(os);
        let report = Rc::try_unwrap(hub)
            .map(|cell| cell.into_inner().into_report())
            .unwrap_or_default();
        (outcome, tail, report)
    }

    /// Boots with the hot-loop profiler enabled plus an event-stream
    /// profile collector, runs to completion, and returns the outcome, the
    /// execution tail, the [`TraceReport`] for whatever sinks `cfg`
    /// enables, and the merged, symbolized [`ProfileReport`] — per-PC and
    /// per-symbol retirement counts, collapsed call stacks, the taint
    /// heatmap, and the syscall table. The report carries counts only (no
    /// wall-clock data), so a deterministic guest profiles
    /// byte-identically under either engine.
    #[must_use]
    pub fn run_profile(
        &self,
        cfg: &TraceConfig,
    ) -> (RunOutcome, Vec<String>, TraceReport, ProfileReport) {
        let fan = Rc::new(RefCell::new(ProfileFan {
            hub: TraceHub::new(cfg),
            events: EventProfile::new(),
        }));
        let observer: SharedObserver = fan.clone();
        let (mut cpu, mut os) = self.boot_with(Some(observer));
        cpu.enable_profiler();
        let outcome = run_to_exit_with(&mut cpu, &mut os, self.limits(), &mut ());
        let tail = self.render_tail(&cpu);
        let hot = cpu.take_profiler().unwrap_or_default();
        drop(cpu);
        drop(os);
        let (trace_report, events) = Rc::try_unwrap(fan)
            .map(|cell| {
                let fan = cell.into_inner();
                (fan.hub.into_report(), fan.events)
            })
            .unwrap_or_else(|_| (TraceReport::default(), EventProfile::new()));
        let profile = ProfileReport::build(&hot, &events, &self.symbol_table());
        (outcome, tail, trace_report, profile)
    }

    /// A profile-ready symbol table over the image's text segment (plus a
    /// synthetic name for the loader's exit stub, which executes right
    /// after text). The mini-C compiler's internal basic-block labels
    /// (`_L<n>_<stem>`) are dropped so samples attribute to the enclosing
    /// function, not the branch target inside it.
    #[must_use]
    pub fn symbol_table(&self) -> SymbolTable {
        let stub = ("<exit-stub>".to_string(), self.image.text_end());
        SymbolTable::build(
            self.image
                .symbols
                .iter()
                .filter(|(name, _)| !name.starts_with("_L"))
                .map(|(name, &addr)| (name.clone(), addr))
                .chain(std::iter::once(stub)),
            self.image.text_base,
            self.image.text_end() + ptaint_os::EXIT_STUB_BYTES,
        )
    }

    fn render_tail(&self, cpu: &Cpu) -> Vec<String> {
        cpu.recent_trace()
            .into_iter()
            .map(|(pc, instr)| {
                let sym = self
                    .image
                    .symbol_at(pc)
                    .map(|s| format!(" <{s}>"))
                    .unwrap_or_default();
                format!("{pc:08x}{sym}: {instr}")
            })
            .collect()
    }

    /// Static program size in bytes (text + data), the "program size"
    /// column of Table 3.
    #[must_use]
    pub fn program_size_bytes(&self) -> u32 {
        self.image.text.len() as u32 * 4 + self.image.data.len() as u32
    }
}

/// A booted, pre-execution machine captured as a copy-on-write baseline.
///
/// Produced by [`Machine::snapshot`]. Every [`MachineSnapshot::fork`]
/// yields an independent `(Cpu, Os)` pair whose memory shares pages with
/// the snapshot until written (see `ptaint_mem`'s COW model); kernel state
/// is copied outright (it is small), and the decode cache is rebuilt on
/// demand with a private copy of the proven-clean set, so a forked run is
/// bit-identical to a fresh boot of the same machine — stats, traces, and
/// campaign reports included.
#[derive(Debug)]
pub struct MachineSnapshot {
    cpu: Cpu,
    os: Os,
    limits: RunLimits,
}

impl MachineSnapshot {
    /// Forks an independent, runnable machine instance off the baseline.
    /// When the snapshot carries an observer (see
    /// [`Machine::snapshot_with`]), the fork is announced on its stream
    /// with an [`Event::Fork`] carrying the COW sharing counters; the
    /// forked instance itself starts unobserved.
    #[must_use]
    pub fn fork(&self) -> (Cpu, Os) {
        let pair = (self.cpu.fork(), self.os.fork());
        if self.cpu.has_observer() {
            self.cpu.emit_event(&Event::Fork {
                pages_shared: self.cpu.mem().pages_shared() as u64,
                cow_faults: self.cpu.mem().cow_fault_count(),
            });
        }
        pair
    }

    /// Forks and runs to completion under the machine's limits — the
    /// baseline trial of a forked campaign.
    #[must_use]
    pub fn run(&self) -> TrialRun {
        let (mut cpu, mut os) = self.fork();
        let outcome = run_to_exit_with(&mut cpu, &mut os, self.limits, &mut ());
        TrialRun {
            outcome,
            io_calls: os.io_call_count(),
            applied: None,
        }
    }

    /// Forks and runs under one injected [`Fault`] — the forked
    /// counterpart of [`Machine::run_injected`], producing bit-identical
    /// [`TrialRun`]s.
    #[must_use]
    pub fn run_injected(&self, fault: &Fault) -> TrialRun {
        let (mut cpu, mut os) = self.fork();
        os.set_io_faults(fault.io_plan());
        let mut injector = StateInjector::new(*fault);
        let outcome = run_to_exit_with(&mut cpu, &mut os, self.limits, &mut injector);
        TrialRun {
            outcome,
            io_calls: os.io_call_count(),
            applied: injector.applied().map(str::to_owned),
        }
    }

    /// Baseline pages currently shared copy-on-write with live forks.
    #[must_use]
    pub fn pages_shared(&self) -> usize {
        self.cpu.mem().pages_shared()
    }
}

/// Fans the event stream to the trace hub *and* the profile collector, so
/// one observer slot serves both (`Machine::run_profile`).
struct ProfileFan {
    hub: TraceHub,
    events: EventProfile,
}

impl Observer for ProfileFan {
    fn on_event(&mut self, event: &Event) {
        self.hub.on_event(event);
        self.events.on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_os::ExitReason;

    #[test]
    fn from_c_builds_and_runs() {
        let m = Machine::from_c("int main() { return 7; }").unwrap();
        assert_eq!(m.run().reason, ExitReason::Exited(7));
        assert!(m.program_size_bytes() > 100);
    }

    #[test]
    fn machine_is_reusable() {
        let m = Machine::from_c(
            r#"int main() {
                char b[16];
                int n = read(0, b, 15);
                b[n] = 0;
                printf("<%s>", b);
                return 0;
            }"#,
        )
        .unwrap();
        let a = m
            .clone()
            .world(WorldConfig::new().stdin(b"one".to_vec()))
            .run();
        let b = m.world(WorldConfig::new().stdin(b"two".to_vec())).run();
        assert_eq!(a.stdout_text(), "<one>");
        assert_eq!(b.stdout_text(), "<two>");
    }

    #[test]
    fn from_asm_builds_bare_programs() {
        let m = Machine::from_asm(
            "main: li $v0, 1
                   li $a0, 9
                   syscall",
        )
        .unwrap();
        assert_eq!(m.run().reason, ExitReason::Exited(9));
    }

    #[test]
    fn pipelined_run_matches_functional_run() {
        let m = Machine::from_c(
            "int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); }
             int main() { return f(10); }",
        )
        .unwrap();
        let plain = m.run();
        let (piped, report) = m.run_pipelined();
        assert_eq!(plain.reason, ExitReason::Exited(55));
        assert_eq!(piped.reason, plain.reason);
        assert_eq!(piped.stats.instructions, plain.stats.instructions);
        assert!(report.cycles >= report.instructions);
        assert!(report.ipc() > 0.3 && report.ipc() <= 1.0);
    }

    #[test]
    fn hierarchy_does_not_change_results() {
        let m = Machine::from_c(
            r#"int main() {
                int i; int s = 0;
                int a[64];
                for (i = 0; i < 64; i++) a[i] = i;
                for (i = 0; i < 64; i++) s += a[i];
                return s & 0x7f;
            }"#,
        )
        .unwrap();
        let flat = m.run();
        let cached = m.hierarchy(HierarchyConfig::two_level()).run();
        assert_eq!(flat.reason, cached.reason);
    }

    #[test]
    fn engine_selector_switches_between_interpreter_and_cache() {
        let m = Machine::from_c("int main() { return 7; }").unwrap();
        let cached = m.clone().engine(Engine::Cached).run();
        let interp = m.engine(Engine::Interp).run();
        assert_eq!(cached.reason, ExitReason::Exited(7));
        assert_eq!(interp.reason, ExitReason::Exited(7));
        assert!(cached.stats.decode_cache_hits > 0);
        assert_eq!(interp.stats.decode_cache_hits, 0);
        assert_eq!(
            cached.stats.without_decode_cache(),
            interp.stats.without_decode_cache()
        );
    }

    #[test]
    fn elision_skips_checks_and_preserves_behaviour() {
        let m = Machine::from_c(
            r#"int main() {
                int i; int s = 0;
                int a[32];
                for (i = 0; i < 32; i++) a[i] = i;
                for (i = 0; i < 32; i++) s += a[i];
                return s & 0x7f;
            }"#,
        )
        .unwrap();
        let elided = m.run_elision_differential();
        assert!(
            elided.stats.elided_checks > 0,
            "an all-clean loop should elide its array accesses: {:?}",
            elided.stats
        );
    }

    #[test]
    fn elision_watch_covers_the_exit_stub_page() {
        use ptaint_isa::PAGE_SIZE;
        use ptaint_mem::WordTaint;

        // Pad text to an exact page multiple so the loader's exit stub
        // starts on its own page; a store patching the stub before it is
        // ever executed must still dirty a watched page (and hence void
        // the proven set), or the analyzed exit path and the running
        // program could silently diverge.
        let body = "nop\n".repeat(PAGE_SIZE as usize / 4 - 1);
        let m = Machine::from_asm(&format!("main: {body} jr $31"))
            .unwrap()
            .elide_checks(true);
        assert_eq!(m.image().text.len() as u32 * 4 % PAGE_SIZE, 0);
        let (mut cpu, _os) = m.boot();
        assert!(cpu.has_proven_checks());
        let stub = m.image().text_end();
        cpu.mem_mut().write_u32(stub, 0, WordTaint::CLEAN).unwrap();
        assert!(
            cpu.mem().has_dirty_code_pages(),
            "store into the exit stub went unwatched"
        );
    }

    #[test]
    fn elision_stays_off_under_other_policies_and_rules() {
        let m = Machine::from_c("int main() { int a[4]; a[1] = 2; return a[1]; }").unwrap();
        let baseline = m
            .clone()
            .policy(DetectionPolicy::ControlOnly)
            .elide_checks(true)
            .run();
        assert_eq!(baseline.stats.elided_checks, 0, "gate: policy mismatch");
        let ablated = m
            .taint_rules(TaintRules {
                compare_untaints: false,
                ..TaintRules::PAPER
            })
            .elide_checks(true)
            .run();
        assert_eq!(ablated.stats.elided_checks, 0, "gate: rules mismatch");
    }

    #[test]
    fn step_limit_is_respected() {
        let m = Machine::from_asm("main: b main").unwrap().step_limit(1000);
        assert_eq!(m.run().reason, ExitReason::StepLimit);
    }

    #[test]
    fn watchdog_stops_a_hung_machine() {
        let m = Machine::from_asm("main: b main")
            .unwrap()
            .watchdog(Duration::from_millis(10));
        assert_eq!(m.run().reason, ExitReason::Watchdog);
    }

    #[test]
    fn injected_taint_clear_defeats_detection() {
        use ptaint_inject::FaultKind;
        // Baseline: dereferencing input is detected. With the shadow bits
        // cleared right before the dereference, the same run exits clean.
        let m = Machine::from_asm(
            r#"
        .data
buf:    .space 8
        .text
main:   li $v0, 3
        li $a0, 0
        la $a1, buf
        li $a2, 8
        syscall
        la $t0, buf
        lw $t1, 0($t0)
        li $v0, 1
        li $a0, 0
        lw $t2, 0($t1)
        syscall
        "#,
        )
        .unwrap()
        .world(WorldConfig::new().stdin(b"\x60aaa".to_vec()));
        let baseline = m.run();
        assert!(baseline.reason.is_detected());
        // Some trigger step between the read (taint arrives) and the load
        // (taint reaches the register file) must defeat the detector: the
        // cleared word dereferences into sparse zero memory and exits clean.
        let mut defeated = false;
        for step in 0..baseline.stats.instructions {
            let trial = m.run_injected(&ptaint_inject::Fault {
                kind: FaultKind::TaintClear,
                io_call: 0,
                step,
                salt: 0,
            });
            if trial.applied.is_some() && trial.outcome.reason == ExitReason::Exited(0) {
                assert_eq!(trial.io_calls, 1);
                assert_eq!(trial.outcome.stats.injected_faults, 1);
                defeated = true;
                break;
            }
        }
        assert!(
            defeated,
            "no taint-clear trigger step defeated the detector"
        );
    }

    #[test]
    fn campaign_reports_are_seed_deterministic() {
        use ptaint_inject::CampaignSpec;
        use ptaint_trace::ToJson;
        let m = Machine::from_c(
            r#"int main() {
                char b[16];
                int n = read(0, b, 15);
                b[n] = 0;
                printf("<%s>", b);
                return 0;
            }"#,
        )
        .unwrap()
        .world(WorldConfig::new().stdin(b"benign input".to_vec()))
        .step_limit(2_000_000);
        let spec = CampaignSpec::new(0xfeed, 6);
        let a = m.run_campaign(&spec).to_json();
        let b = m.run_campaign(&spec).to_json();
        assert_eq!(a, b, "same seed must reproduce the report byte-for-byte");
        assert!(a.contains("\"baseline\":{\"detected\":false"));
    }

    #[test]
    fn forked_campaign_matches_rebooted_campaign_byte_for_byte() {
        use ptaint_inject::CampaignSpec;
        use ptaint_trace::ToJson;
        let m = Machine::from_c(
            r#"int main() {
                char b[16];
                int n = read(0, b, 15);
                b[n] = 0;
                printf("<%s>", b);
                return 0;
            }"#,
        )
        .unwrap()
        .world(WorldConfig::new().stdin(b"benign input".to_vec()))
        .step_limit(2_000_000);
        let spec = CampaignSpec::new(0xfeed, 6);
        let forked = m.run_campaign(&spec).to_json();
        let rebooted = m.fork_trials(false).run_campaign(&spec).to_json();
        assert_eq!(
            forked, rebooted,
            "fork-per-trial must reproduce the reboot-per-trial report byte-for-byte"
        );
    }

    #[test]
    fn snapshot_forks_run_bit_identical_to_fresh_boots() {
        let m = Machine::from_c(
            r#"int main() {
                char b[32];
                int n = read(0, b, 31);
                write(1, b, n);
                return n;
            }"#,
        )
        .unwrap()
        .world(WorldConfig::new().stdin(b"cow snapshot".to_vec()));
        let fresh = m.run();
        let snap = m.snapshot();
        for _ in 0..3 {
            let trial = snap.run();
            assert_eq!(trial.outcome.reason, fresh.reason);
            assert_eq!(trial.outcome.stats, fresh.stats);
            assert_eq!(trial.outcome.stdout, fresh.stdout);
        }
        // Sharing is live only while a fork exists: completed trials drop
        // their pages, so hold one open to observe the COW state.
        let held = snap.fork();
        assert!(
            snap.pages_shared() > 0,
            "a live fork should share the baseline's read-only pages"
        );
        drop(held);
        assert_eq!(snap.pages_shared(), 0);
    }

    #[test]
    fn record_then_replay_reproduces_the_run_without_the_world() {
        let m = Machine::from_c(
            r#"int main() {
                char b[32];
                int n = read(0, b, 31);
                write(1, b, n);
                return 7;
            }"#,
        )
        .unwrap()
        .world(WorldConfig::new().stdin(b"journal me".to_vec()));
        let (live, journal) = m.record();
        assert!(!journal.is_empty());
        // Replay against an empty world: every result comes from the journal.
        let empty = Machine {
            world: WorldConfig::new(),
            ..m
        };
        let replayed = empty.replay(journal);
        assert_eq!(replayed.reason, live.reason);
        assert_eq!(replayed.stats, live.stats);
        // Replay reproduces guest-visible execution from the journal; it
        // does not re-perform world side effects, so stdout stays empty.
        assert!(replayed.stdout.is_empty());
    }
}
