//! The syscall layer — where taint enters the system.

use std::collections::{HashMap, VecDeque};

use ptaint_cpu::Cpu;
use ptaint_isa::Reg;
use ptaint_mem::WordTaint;
use ptaint_trace::Event;

use crate::faults::{IoFault, IoFaultPlan, EINTR};
use crate::journal::{DeliveredInput, JournalEntry, ReplayDivergence, SyscallJournal};
use crate::WorldConfig;

/// System call numbers (passed in `$v0`; arguments in `$a0..$a2`; result in
/// `$v0`, with `-1` for errors).
///
/// `Read` and `Recv` are the two calls the paper singles out (§4.4): every
/// byte they deliver to a user buffer is marked tainted, because it comes
/// from an external, attacker-controllable source. `Read` covers local I/O
/// (stdin and files), `Recv` network I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Sys {
    /// `exit(status)` — terminate the process.
    Exit = 1,
    /// `read(fd, buf, len) -> n` — **taints** the delivered bytes.
    Read = 3,
    /// `write(fd, buf, len) -> n`.
    Write = 4,
    /// `open(path, flags) -> fd` (flags: 0 read, 1 write/create).
    Open = 5,
    /// `close(fd)`.
    Close = 6,
    /// `brk(addr) -> break` — `addr == 0` queries the current break.
    Brk = 9,
    /// `getpid() -> pid`.
    GetPid = 20,
    /// `getuid() -> uid`.
    GetUid = 24,
    /// `socket() -> fd` — a listening TCP-style socket.
    Socket = 42,
    /// `bind(fd, port) -> 0`.
    Bind = 43,
    /// `listen(fd) -> 0`.
    Listen = 44,
    /// `accept(fd) -> connfd` — next scripted client session, `-1` when the
    /// script is exhausted.
    Accept = 45,
    /// `recv(fd, buf, len) -> n` — **taints** the delivered bytes; one
    /// scripted message per call, `0` at end of session.
    Recv = 46,
    /// `send(fd, buf, len) -> n` — appends to the session transcript.
    Send = 47,
}

impl Sys {
    /// Decodes a syscall number.
    #[must_use]
    pub fn from_number(n: u32) -> Option<Sys> {
        Some(match n {
            1 => Sys::Exit,
            3 => Sys::Read,
            4 => Sys::Write,
            5 => Sys::Open,
            6 => Sys::Close,
            9 => Sys::Brk,
            20 => Sys::GetPid,
            24 => Sys::GetUid,
            42 => Sys::Socket,
            43 => Sys::Bind,
            44 => Sys::Listen,
            45 => Sys::Accept,
            46 => Sys::Recv,
            47 => Sys::Send,
            _ => return None,
        })
    }

    /// The syscall number.
    #[must_use]
    pub const fn number(self) -> u32 {
        self as u32
    }

    /// The syscall's mnemonic name, for trace events and diagnostics.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Sys::Exit => "exit",
            Sys::Read => "read",
            Sys::Write => "write",
            Sys::Open => "open",
            Sys::Close => "close",
            Sys::Brk => "brk",
            Sys::GetPid => "getpid",
            Sys::GetUid => "getuid",
            Sys::Socket => "socket",
            Sys::Bind => "bind",
            Sys::Listen => "listen",
            Sys::Accept => "accept",
            Sys::Recv => "recv",
            Sys::Send => "send",
        }
    }
}

#[derive(Debug, Clone)]
enum Desc {
    StdIn,
    StdOut,
    StdErr,
    File {
        path: String,
        pos: usize,
        write: bool,
    },
    ListenSocket,
    Connection {
        session: usize,
    },
}

/// The runtime kernel: descriptor table, console, file system, scripted
/// network, program break.
///
/// Drive it from the CPU loop: on `StepEvent::SyscallTrap` (from
/// `ptaint-cpu`), call [`Os::handle_syscall`].
#[derive(Debug)]
pub struct Os {
    stdin: VecDeque<u8>,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    files: HashMap<String, Vec<u8>>,
    descriptors: HashMap<i32, Desc>,
    next_fd: i32,
    sessions: Vec<SessionState>,
    next_session: usize,
    brk: u32,
    uid: u32,
    exit_status: Option<i32>,
    /// Bytes tainted by the kernel on behalf of the process (for §5.4's
    /// software-overhead accounting: one extra instruction per tainted byte).
    pub tainted_input_bytes: u64,
    /// Per-name sequence numbers for taint-source labels (`read#1`, `recv#2`),
    /// only advanced while an observer is attached.
    source_seq: HashMap<&'static str, u64>,
    /// Scheduled I/O degradations (empty outside injection campaigns).
    io_faults: IoFaultPlan,
    /// Taint-delivering calls serviced so far — the index space of
    /// [`IoFaultPlan`].
    io_calls: u64,
    /// Record/replay state (off by default).
    journal: JournalMode,
    /// Scratch slot: the tainted delivery made while servicing the current
    /// call, captured by `deliver_tainted` for the recorder.
    last_delivery: Option<DeliveredInput>,
}

#[derive(Debug, Clone)]
struct SessionState {
    incoming: VecDeque<Vec<u8>>,
    sent: Vec<u8>,
}

/// Whether (and how) the kernel journals syscalls.
#[derive(Debug)]
enum JournalMode {
    /// No journalling (the default, and what forks start with).
    Off,
    /// Every serviced call is appended to the journal.
    Record(SyscallJournal),
    /// Calls are answered from the journal instead of the world; a guest
    /// call the journal did not record stops the run with a structured
    /// [`ReplayDivergence`].
    Replay {
        journal: SyscallJournal,
        cursor: usize,
        divergence: Option<ReplayDivergence>,
    },
}

impl Os {
    /// Builds the kernel from a world description. The initial program break
    /// must be set by the loader via [`Os::set_brk`].
    #[must_use]
    pub fn new(world: WorldConfig) -> Os {
        let mut descriptors = HashMap::new();
        descriptors.insert(0, Desc::StdIn);
        descriptors.insert(1, Desc::StdOut);
        descriptors.insert(2, Desc::StdErr);
        Os {
            stdin: world.stdin.into(),
            stdout: Vec::new(),
            stderr: Vec::new(),
            files: world.files,
            descriptors,
            next_fd: 3,
            sessions: world
                .sessions
                .into_iter()
                .map(|s| SessionState {
                    incoming: s.messages.into(),
                    sent: Vec::new(),
                })
                .collect(),
            next_session: 0,
            brk: 0,
            uid: world.uid,
            exit_status: None,
            tainted_input_bytes: 0,
            source_seq: HashMap::new(),
            io_faults: IoFaultPlan::new(),
            io_calls: 0,
            journal: JournalMode::Off,
            last_delivery: None,
        }
    }

    /// Forks the kernel: an independent copy of every piece of world state —
    /// descriptor table, console buffers, file system, scripted-peer
    /// cursors, program break, I/O fault plan and its call counter. Writes
    /// on either side never alias the other.
    ///
    /// Journal state is deliberately *not* inherited: record/replay is a
    /// single-timeline activity, and a fork is a new timeline. Start a new
    /// recording on the fork if needed.
    #[must_use]
    pub fn fork(&self) -> Os {
        Os {
            stdin: self.stdin.clone(),
            stdout: self.stdout.clone(),
            stderr: self.stderr.clone(),
            files: self.files.clone(),
            descriptors: self.descriptors.clone(),
            next_fd: self.next_fd,
            sessions: self.sessions.clone(),
            next_session: self.next_session,
            brk: self.brk,
            uid: self.uid,
            exit_status: self.exit_status,
            tainted_input_bytes: self.tainted_input_bytes,
            source_seq: self.source_seq.clone(),
            io_faults: self.io_faults.clone(),
            io_calls: self.io_calls,
            journal: JournalMode::Off,
            last_delivery: None,
        }
    }

    /// Switches the kernel into record mode: every subsequently serviced
    /// syscall is journalled. Replaces any previous journal state.
    pub fn start_recording(&mut self) {
        self.journal = JournalMode::Record(SyscallJournal::new());
    }

    /// Detaches the recorded journal, leaving journalling off. Returns
    /// `None` when the kernel was not recording.
    pub fn take_journal(&mut self) -> Option<SyscallJournal> {
        match std::mem::replace(&mut self.journal, JournalMode::Off) {
            JournalMode::Record(journal) => Some(journal),
            other => {
                self.journal = other;
                None
            }
        }
    }

    /// Switches the kernel into replay mode: syscalls are answered from
    /// `journal` instead of the world, byte-exactly. Replaces any previous
    /// journal state.
    pub fn start_replay(&mut self, journal: SyscallJournal) {
        self.journal = JournalMode::Replay {
            journal,
            cursor: 0,
            divergence: None,
        };
    }

    /// Takes the pending replay divergence, if the last serviced call
    /// departed from the journal. The run loop polls this after every
    /// syscall and converts it into a structured exit reason.
    pub fn take_replay_divergence(&mut self) -> Option<ReplayDivergence> {
        match &mut self.journal {
            JournalMode::Replay { divergence, .. } => divergence.take(),
            _ => None,
        }
    }

    /// Installs an I/O degradation schedule (see [`IoFaultPlan`]); replaces
    /// any previous plan. The default plan is empty.
    pub fn set_io_faults(&mut self, plan: IoFaultPlan) {
        self.io_faults = plan;
    }

    /// Taint-delivering calls (`read`/`recv` on readable descriptors)
    /// serviced so far. Campaigns use a baseline run's count to pick which
    /// call to degrade.
    #[must_use]
    pub fn io_call_count(&self) -> u64 {
        self.io_calls
    }

    /// Advances the delivery-call counter and looks up the scheduled fault.
    fn next_io_fault(&mut self) -> (u64, Option<IoFault>) {
        let idx = self.io_calls;
        self.io_calls += 1;
        (idx, self.io_faults.at(idx))
    }

    /// Books an applied I/O fault: bumps the CPU's counter, emits the
    /// `fault_injected` event, and passes `result` through to the guest.
    fn apply_io_fault(
        &mut self,
        cpu: &mut Cpu,
        idx: u64,
        fault: IoFault,
        fd: i32,
        result: i32,
    ) -> i32 {
        cpu.note_injected_fault();
        if cpu.has_observer() {
            cpu.emit_event(&Event::FaultInjected {
                kind: fault.name(),
                detail: format!("io call#{idx} fd={fd} -> {result}"),
            });
        }
        result
    }

    /// Sets the initial program break (end of loaded data, page aligned).
    pub fn set_brk(&mut self, brk: u32) {
        self.brk = brk;
    }

    /// The exit status once the process called `exit`.
    #[must_use]
    pub fn exit_status(&self) -> Option<i32> {
        self.exit_status
    }

    /// Everything written to stdout so far.
    #[must_use]
    pub fn stdout(&self) -> &[u8] {
        &self.stdout
    }

    /// Everything written to stderr so far.
    #[must_use]
    pub fn stderr(&self) -> &[u8] {
        &self.stderr
    }

    /// Bytes the guest sent on each network session.
    #[must_use]
    pub fn session_transcripts(&self) -> Vec<&[u8]> {
        self.sessions.iter().map(|s| s.sent.as_slice()).collect()
    }

    /// Contents of a file (including files the guest wrote).
    #[must_use]
    pub fn file(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(Vec::as_slice)
    }

    /// Services the syscall the CPU just trapped on: reads the number from
    /// `$v0` and arguments from `$a0..$a2`, performs the call, and writes the
    /// result to `$v0` (untainted — kernel return values are trusted; only
    /// *delivered input bytes* are tainted).
    ///
    /// Unknown syscall numbers and bad descriptors return `-1` to the guest
    /// rather than stopping the simulation, like a real kernel.
    pub fn handle_syscall(&mut self, cpu: &mut Cpu) {
        let number = cpu.regs().value(Reg::V0);
        let a0 = cpu.regs().value(Reg::A0);
        let a1 = cpu.regs().value(Reg::A1);
        let a2 = cpu.regs().value(Reg::A2);

        if matches!(self.journal, JournalMode::Replay { .. }) {
            self.replay_syscall(cpu, number, [a0, a1, a2]);
            return;
        }
        self.last_delivery = None;

        let result: i32 = match Sys::from_number(number) {
            None => -1,
            Some(Sys::Exit) => {
                self.exit_status = Some(a0 as i32);
                0
            }
            Some(Sys::Read) => self.sys_read(cpu, a0 as i32, a1, a2),
            Some(Sys::Write) => self.sys_write(cpu, a0 as i32, a1, a2),
            Some(Sys::Open) => self.sys_open(cpu, a0, a1),
            Some(Sys::Close) => -i32::from(self.descriptors.remove(&(a0 as i32)).is_none()),
            Some(Sys::Brk) => {
                if a0 != 0 {
                    self.brk = a0;
                }
                self.brk as i32
            }
            Some(Sys::GetPid) => 1,
            Some(Sys::GetUid) => self.uid as i32,
            Some(Sys::Socket) => {
                let fd = self.next_fd;
                self.next_fd += 1;
                self.descriptors.insert(fd, Desc::ListenSocket);
                fd
            }
            Some(Sys::Bind | Sys::Listen) => {
                if matches!(self.descriptors.get(&(a0 as i32)), Some(Desc::ListenSocket)) {
                    0
                } else {
                    -1
                }
            }
            Some(Sys::Accept) => self.sys_accept(a0 as i32),
            Some(Sys::Recv) => self.sys_recv(cpu, a0 as i32, a1, a2),
            Some(Sys::Send) => self.sys_send(cpu, a0 as i32, a1, a2),
        };

        if let JournalMode::Record(journal) = &mut self.journal {
            journal.entries.push(JournalEntry {
                number,
                args: [a0, a1, a2],
                result,
                delivered: self.last_delivery.take(),
            });
        }

        cpu.regs_mut().set(Reg::V0, result as u32, WordTaint::CLEAN);
        if cpu.has_observer() {
            cpu.emit_event(&Event::Syscall {
                // The CPU already advanced past the trapping instruction.
                pc: cpu.pc().wrapping_sub(4),
                number,
                name: Sys::from_number(number).map_or("unknown", Sys::name),
                result,
            });
        }
    }

    /// Mirrors a parked divergence into the trace stream, when observed.
    fn emit_divergence(cpu: &Cpu, d: &ReplayDivergence) {
        if cpu.has_observer() {
            cpu.emit_event(&Event::ReplayDivergence {
                index: d.index as u64,
                expected: d.expected.clone(),
                actual: d.actual.clone(),
            });
        }
    }

    /// Services one syscall from the journal instead of the world. The
    /// guest's call must match the next recorded entry exactly (number and
    /// all three arguments); any departure — including running past the
    /// journal's end — parks a [`ReplayDivergence`] for the run loop
    /// instead of answering.
    fn replay_syscall(&mut self, cpu: &mut Cpu, number: u32, args: [u32; 3]) {
        let actual = JournalEntry {
            number,
            args,
            result: 0,
            delivered: None,
        }
        .describe();
        let JournalMode::Replay {
            journal,
            cursor,
            divergence,
        } = &mut self.journal
        else {
            unreachable!("caller checked the mode");
        };
        let index = *cursor;
        let Some(entry) = journal.entries.get(index) else {
            let d = ReplayDivergence {
                index,
                expected: "<end of journal>".to_string(),
                actual,
            };
            *divergence = Some(d.clone());
            Os::emit_divergence(cpu, &d);
            return;
        };
        if entry.number != number || entry.args != args {
            let d = ReplayDivergence {
                index,
                expected: entry.describe(),
                actual,
            };
            *divergence = Some(d.clone());
            Os::emit_divergence(cpu, &d);
            return;
        }
        let entry = entry.clone();
        *cursor += 1;

        if let Some(d) = &entry.delivered {
            // Re-serve the recorded tainted bytes at the recorded address.
            // A write fault here means guest memory diverged from the
            // recorded timeline (the recorded delivery succeeded).
            if cpu.mem_mut().write_bytes(d.buf, &d.data, true).is_err() {
                let diverged = ReplayDivergence {
                    index,
                    expected: format!("{} delivering {} bytes", entry.describe(), d.data.len()),
                    actual: format!("{actual} with a faulting buffer"),
                };
                let JournalMode::Replay { divergence, .. } = &mut self.journal else {
                    unreachable!("mode is stable across delivery");
                };
                *divergence = Some(diverged.clone());
                Os::emit_divergence(cpu, &diverged);
                return;
            }
            self.tainted_input_bytes += d.data.len() as u64;
            if cpu.has_observer() && !d.data.is_empty() {
                // Mirror `deliver_tainted`'s labelling so a traced replay
                // produces the same provenance events as the recording.
                let name: &'static str = if d.source == "recv" { "recv" } else { "read" };
                let seq = self.source_seq.entry(name).or_insert(0);
                *seq += 1;
                cpu.emit_event(&Event::TaintSource {
                    kind: "syscall",
                    label: format!("{name}#{seq} fd={}", d.fd),
                    base: d.buf,
                    len: d.data.len() as u32,
                });
            }
        }
        if Sys::from_number(number) == Some(Sys::Exit) {
            self.exit_status = Some(args[0] as i32);
        }

        cpu.regs_mut()
            .set(Reg::V0, entry.result as u32, WordTaint::CLEAN);
        if cpu.has_observer() {
            cpu.emit_event(&Event::Syscall {
                pc: cpu.pc().wrapping_sub(4),
                number,
                name: Sys::from_number(number).map_or("unknown", Sys::name),
                result: entry.result,
            });
        }
    }

    /// Copies `data` into the guest buffer **marking every byte tainted** —
    /// the kernel→user boundary of §4.4. `name`/`fd` label the taint source
    /// for provenance (e.g. `recv#2 fd=4`); the label is only built when an
    /// observer is attached.
    fn deliver_tainted(
        &mut self,
        cpu: &mut Cpu,
        buf: u32,
        data: &[u8],
        name: &'static str,
        fd: i32,
    ) -> i32 {
        match cpu.mem_mut().write_bytes(buf, data, true) {
            Ok(()) => {
                self.tainted_input_bytes += data.len() as u64;
                // Journal the delivery (empty deliveries are no-ops on
                // replay, so they are not recorded).
                if matches!(self.journal, JournalMode::Record(_)) && !data.is_empty() {
                    self.last_delivery = Some(DeliveredInput {
                        buf,
                        data: data.to_vec(),
                        source: name.to_string(),
                        fd,
                    });
                }
                if cpu.has_observer() && !data.is_empty() {
                    let seq = self.source_seq.entry(name).or_insert(0);
                    *seq += 1;
                    cpu.emit_event(&Event::TaintSource {
                        kind: "syscall",
                        label: format!("{name}#{seq} fd={fd}"),
                        base: buf,
                        len: data.len() as u32,
                    });
                }
                data.len() as i32
            }
            Err(_) => -1, // EFAULT
        }
    }

    fn sys_read(&mut self, cpu: &mut Cpu, fd: i32, buf: u32, len: u32) -> i32 {
        let len = len as usize;
        // Classify first, so the fault-plan counter only advances on calls
        // that would deliver tainted bytes.
        enum Source {
            Stdin,
            File,
            Conn(usize),
        }
        let source = match self.descriptors.get(&fd) {
            Some(Desc::StdIn) => Source::Stdin,
            Some(Desc::File { write: false, .. }) => Source::File,
            Some(Desc::Connection { session }) => Source::Conn(*session),
            _ => return -1,
        };
        if let Source::Conn(session) = source {
            return self.recv_from_session(cpu, session, buf, len, "read", fd);
        }
        let (idx, fault) = self.next_io_fault();
        match fault {
            Some(IoFault::Eintr) => self.apply_io_fault(cpu, idx, IoFault::Eintr, fd, EINTR),
            // No connection behind stdin/files: a reset degrades to a plain
            // transient error, nothing is consumed.
            Some(IoFault::Reset) => self.apply_io_fault(cpu, idx, IoFault::Reset, fd, -1),
            _ => {
                let cap = match fault.and_then(IoFault::keep) {
                    Some(keep) => len.min(keep as usize),
                    None => len,
                };
                let data = match source {
                    Source::Stdin => {
                        let take = cap.min(self.stdin.len());
                        self.stdin.drain(..take).collect::<Vec<u8>>()
                    }
                    Source::File => match self.descriptors.get_mut(&fd) {
                        Some(Desc::File { path, pos, .. }) => {
                            let Some(contents) = self.files.get(path.as_str()) else {
                                return -1;
                            };
                            let take = cap.min(contents.len().saturating_sub(*pos));
                            let data = contents[*pos..*pos + take].to_vec();
                            *pos += take;
                            data
                        }
                        _ => return -1,
                    },
                    Source::Conn(_) => unreachable!("handled above"),
                };
                let n = self.deliver_tainted(cpu, buf, &data, "read", fd);
                match fault {
                    Some(f) => self.apply_io_fault(cpu, idx, f, fd, n),
                    None => n,
                }
            }
        }
    }

    fn sys_write(&mut self, cpu: &mut Cpu, fd: i32, buf: u32, len: u32) -> i32 {
        let data = match cpu.mem().read_bytes(buf, len) {
            Ok(d) => d,
            Err(_) => return -1,
        };
        match self.descriptors.get_mut(&fd) {
            Some(Desc::StdOut) => {
                self.stdout.extend_from_slice(&data);
                len as i32
            }
            Some(Desc::StdErr) => {
                self.stderr.extend_from_slice(&data);
                len as i32
            }
            Some(Desc::File {
                path, write: true, ..
            }) => {
                self.files
                    .entry(path.clone())
                    .or_default()
                    .extend_from_slice(&data);
                len as i32
            }
            Some(Desc::Connection { session }) => {
                let session = *session;
                // Hardened: a dangling session index is a guest-visible
                // error, not a host panic.
                match self.sessions.get_mut(session) {
                    Some(s) => {
                        s.sent.extend_from_slice(&data);
                        len as i32
                    }
                    None => -1,
                }
            }
            _ => -1,
        }
    }

    fn sys_open(&mut self, cpu: &mut Cpu, path_ptr: u32, flags: u32) -> i32 {
        let path = match cpu.mem().read_cstr(path_ptr, 4096) {
            Ok(p) => match String::from_utf8(p) {
                Ok(s) => s,
                Err(_) => return -1,
            },
            Err(_) => return -1,
        };
        let write = flags & 1 != 0;
        if write {
            self.files.insert(path.clone(), Vec::new());
        } else if !self.files.contains_key(&path) {
            return -1; // ENOENT
        }
        let fd = self.next_fd;
        self.next_fd += 1;
        self.descriptors.insert(
            fd,
            Desc::File {
                path,
                pos: 0,
                write,
            },
        );
        fd
    }

    fn sys_accept(&mut self, fd: i32) -> i32 {
        if !matches!(self.descriptors.get(&fd), Some(Desc::ListenSocket)) {
            return -1;
        }
        if self.next_session >= self.sessions.len() {
            return -1; // no more scripted clients
        }
        let session = self.next_session;
        self.next_session += 1;
        let conn = self.next_fd;
        self.next_fd += 1;
        self.descriptors.insert(conn, Desc::Connection { session });
        conn
    }

    fn recv_from_session(
        &mut self,
        cpu: &mut Cpu,
        session: usize,
        buf: u32,
        len: usize,
        name: &'static str,
        fd: i32,
    ) -> i32 {
        if self.sessions.get(session).is_none() {
            return -1;
        }
        let (idx, fault) = self.next_io_fault();
        let state = match self.sessions.get_mut(session) {
            Some(s) => s,
            None => return -1,
        };
        match fault {
            Some(IoFault::Eintr) => {
                return self.apply_io_fault(cpu, idx, IoFault::Eintr, fd, EINTR);
            }
            Some(IoFault::Reset) => {
                // Connection reset by peer: the rest of the scripted session
                // is gone for good.
                state.incoming.clear();
                return self.apply_io_fault(cpu, idx, IoFault::Reset, fd, -1);
            }
            _ => {}
        }
        let Some(mut msg) = state.incoming.pop_front() else {
            return 0; // orderly shutdown
        };
        let cap = match fault.and_then(IoFault::keep) {
            Some(keep) => len.min(keep as usize),
            None => len,
        };
        if msg.len() > cap {
            let rest = msg.split_off(cap);
            // Deliver the prefix now. A short read *drops* the remainder
            // (truncation); everything else requeues it (stream semantics).
            if !matches!(fault, Some(IoFault::ShortRead { .. })) {
                state.incoming.push_front(rest);
            }
        }
        let n = self.deliver_tainted(cpu, buf, &msg, name, fd);
        match fault {
            Some(f) => self.apply_io_fault(cpu, idx, f, fd, n),
            None => n,
        }
    }

    fn sys_recv(&mut self, cpu: &mut Cpu, fd: i32, buf: u32, len: u32) -> i32 {
        match self.descriptors.get(&fd) {
            Some(Desc::Connection { session }) => {
                let session = *session;
                self.recv_from_session(cpu, session, buf, len as usize, "recv", fd)
            }
            _ => -1,
        }
    }

    fn sys_send(&mut self, cpu: &mut Cpu, fd: i32, buf: u32, len: u32) -> i32 {
        match self.descriptors.get(&fd) {
            Some(Desc::Connection { .. }) => self.sys_write(cpu, fd, buf, len),
            _ => -1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_cpu::DetectionPolicy;
    use ptaint_mem::MemorySystem;

    fn cpu() -> Cpu {
        Cpu::new(MemorySystem::flat(), DetectionPolicy::PointerTaintedness)
    }

    fn call(os: &mut Os, cpu: &mut Cpu, sys: Sys, a0: u32, a1: u32, a2: u32) -> i32 {
        cpu.regs_mut().set(Reg::V0, sys.number(), WordTaint::CLEAN);
        cpu.regs_mut().set(Reg::A0, a0, WordTaint::CLEAN);
        cpu.regs_mut().set(Reg::A1, a1, WordTaint::CLEAN);
        cpu.regs_mut().set(Reg::A2, a2, WordTaint::CLEAN);
        os.handle_syscall(cpu);
        cpu.regs().value(Reg::V0) as i32
    }

    const BUF: u32 = 0x1000_0000;

    #[test]
    fn read_from_stdin_taints_buffer() {
        let mut os = Os::new(WorldConfig::new().stdin(b"attack".to_vec()));
        let mut cpu = cpu();
        let n = call(&mut os, &mut cpu, Sys::Read, 0, BUF, 64);
        assert_eq!(n, 6);
        assert_eq!(cpu.mem().read_bytes(BUF, 6).unwrap(), b"attack");
        assert!(cpu.mem().read_taint(BUF, 6).unwrap().iter().all(|&t| t));
        assert_eq!(os.tainted_input_bytes, 6);
        // Second read: empty -> 0
        assert_eq!(call(&mut os, &mut cpu, Sys::Read, 0, BUF, 64), 0);
    }

    #[test]
    fn file_reads_are_tainted_and_positional() {
        let mut os = Os::new(WorldConfig::new().file("/data", b"0123456789".to_vec()));
        let mut cpu = cpu();
        // Path string in guest memory.
        cpu.mem_mut()
            .write_bytes(0x2000_0000, b"/data\0", false)
            .unwrap();
        let fd = call(&mut os, &mut cpu, Sys::Open, 0x2000_0000, 0, 0);
        assert!(fd >= 3);
        assert_eq!(call(&mut os, &mut cpu, Sys::Read, fd as u32, BUF, 4), 4);
        assert_eq!(cpu.mem().read_bytes(BUF, 4).unwrap(), b"0123");
        assert_eq!(call(&mut os, &mut cpu, Sys::Read, fd as u32, BUF, 100), 6);
        assert_eq!(call(&mut os, &mut cpu, Sys::Read, fd as u32, BUF, 100), 0);
        assert!(cpu.mem().read_taint(BUF, 4).unwrap().iter().all(|&t| t));
        assert_eq!(call(&mut os, &mut cpu, Sys::Close, fd as u32, 0, 0), 0);
        assert_eq!(call(&mut os, &mut cpu, Sys::Read, fd as u32, BUF, 4), -1);
    }

    #[test]
    fn open_missing_file_fails() {
        let mut os = Os::new(WorldConfig::new());
        let mut cpu = cpu();
        cpu.mem_mut()
            .write_bytes(0x2000_0000, b"/nope\0", false)
            .unwrap();
        assert_eq!(call(&mut os, &mut cpu, Sys::Open, 0x2000_0000, 0, 0), -1);
    }

    #[test]
    fn file_writes_are_visible_to_host() {
        let mut os = Os::new(WorldConfig::new());
        let mut cpu = cpu();
        cpu.mem_mut()
            .write_bytes(0x2000_0000, b"/etc/passwd\0", false)
            .unwrap();
        cpu.mem_mut()
            .write_bytes(BUF, b"alice:x:0:0::/home/root:/bin/bash\n", true)
            .unwrap();
        let fd = call(&mut os, &mut cpu, Sys::Open, 0x2000_0000, 1, 0);
        assert_eq!(call(&mut os, &mut cpu, Sys::Write, fd as u32, BUF, 34), 34);
        assert_eq!(
            os.file("/etc/passwd").unwrap(),
            b"alice:x:0:0::/home/root:/bin/bash\n"
        );
    }

    #[test]
    fn console_output_is_captured() {
        let mut os = Os::new(WorldConfig::new());
        let mut cpu = cpu();
        cpu.mem_mut().write_bytes(BUF, b"hello\n", false).unwrap();
        assert_eq!(call(&mut os, &mut cpu, Sys::Write, 1, BUF, 6), 6);
        cpu.mem_mut().write_bytes(BUF, b"oops\n", false).unwrap();
        assert_eq!(call(&mut os, &mut cpu, Sys::Write, 2, BUF, 5), 5);
        assert_eq!(os.stdout(), b"hello\n");
        assert_eq!(os.stderr(), b"oops\n");
    }

    #[test]
    fn socket_lifecycle_and_tainted_recv() {
        let mut os = Os::new(
            WorldConfig::new()
                .session(NetSessionHelper::msgs(&[b"GET /", b"more"]))
                .session(NetSessionHelper::msgs(&[b"second client"])),
        );
        let mut cpu = cpu();
        let sock = call(&mut os, &mut cpu, Sys::Socket, 0, 0, 0);
        assert_eq!(call(&mut os, &mut cpu, Sys::Bind, sock as u32, 80, 0), 0);
        assert_eq!(call(&mut os, &mut cpu, Sys::Listen, sock as u32, 0, 0), 0);

        let c1 = call(&mut os, &mut cpu, Sys::Accept, sock as u32, 0, 0);
        assert!(c1 > sock);
        assert_eq!(call(&mut os, &mut cpu, Sys::Recv, c1 as u32, BUF, 64), 5);
        assert_eq!(cpu.mem().read_bytes(BUF, 5).unwrap(), b"GET /");
        assert!(cpu.mem().read_taint(BUF, 5).unwrap().iter().all(|&t| t));
        assert_eq!(call(&mut os, &mut cpu, Sys::Recv, c1 as u32, BUF, 64), 4);
        assert_eq!(call(&mut os, &mut cpu, Sys::Recv, c1 as u32, BUF, 64), 0);

        // Send collects into the transcript.
        cpu.mem_mut().write_bytes(BUF, b"200 OK", false).unwrap();
        assert_eq!(call(&mut os, &mut cpu, Sys::Send, c1 as u32, BUF, 6), 6);
        assert_eq!(os.session_transcripts()[0], b"200 OK");

        let c2 = call(&mut os, &mut cpu, Sys::Accept, sock as u32, 0, 0);
        assert_eq!(call(&mut os, &mut cpu, Sys::Recv, c2 as u32, BUF, 64), 13);
        // Script exhausted.
        assert_eq!(call(&mut os, &mut cpu, Sys::Accept, sock as u32, 0, 0), -1);
    }

    #[test]
    fn recv_respects_buffer_length_with_stream_semantics() {
        let mut os = Os::new(WorldConfig::new().session(NetSessionHelper::msgs(&[b"abcdefgh"])));
        let mut cpu = cpu();
        let sock = call(&mut os, &mut cpu, Sys::Socket, 0, 0, 0);
        let c = call(&mut os, &mut cpu, Sys::Accept, sock as u32, 0, 0);
        assert_eq!(call(&mut os, &mut cpu, Sys::Recv, c as u32, BUF, 3), 3);
        assert_eq!(cpu.mem().read_bytes(BUF, 3).unwrap(), b"abc");
        assert_eq!(call(&mut os, &mut cpu, Sys::Recv, c as u32, BUF, 64), 5);
        assert_eq!(cpu.mem().read_bytes(BUF, 5).unwrap(), b"defgh");
    }

    #[test]
    fn io_fault_plan_degrades_stdin_reads_deterministically() {
        let mut os = Os::new(WorldConfig::new().stdin(b"abcdef".to_vec()));
        os.set_io_faults(
            IoFaultPlan::new()
                .on_call(0, IoFault::Eintr)
                .on_call(1, IoFault::ShortRead { keep: 2 }),
        );
        let mut cpu = cpu();
        // Call 0: interrupted, nothing consumed.
        assert_eq!(call(&mut os, &mut cpu, Sys::Read, 0, BUF, 64), EINTR);
        // Call 1: short read delivers 2 bytes; stdin retains the rest.
        assert_eq!(call(&mut os, &mut cpu, Sys::Read, 0, BUF, 64), 2);
        assert_eq!(cpu.mem().read_bytes(BUF, 2).unwrap(), b"ab");
        // Call 2: undegraded, drains the remainder.
        assert_eq!(call(&mut os, &mut cpu, Sys::Read, 0, BUF, 64), 4);
        assert_eq!(cpu.mem().read_bytes(BUF, 4).unwrap(), b"cdef");
        assert_eq!(os.io_call_count(), 3);
        assert_eq!(cpu.stats().injected_faults, 2);
    }

    #[test]
    fn socket_faults_truncate_fragment_and_reset() {
        let mut os =
            Os::new(WorldConfig::new().session(NetSessionHelper::msgs(&[b"abcdefgh", b"tailmsg"])));
        os.set_io_faults(
            IoFaultPlan::new()
                .on_call(0, IoFault::ShortRead { keep: 3 })
                .on_call(1, IoFault::Fragment { keep: 2 }),
        );
        let mut cpu = cpu();
        let sock = call(&mut os, &mut cpu, Sys::Socket, 0, 0, 0);
        let c = call(&mut os, &mut cpu, Sys::Accept, sock as u32, 0, 0);
        // Short read: 3 bytes delivered, the message's remainder is LOST.
        assert_eq!(call(&mut os, &mut cpu, Sys::Recv, c as u32, BUF, 64), 3);
        assert_eq!(cpu.mem().read_bytes(BUF, 3).unwrap(), b"abc");
        // Fragment: 2 bytes now, the rest requeued (lossless).
        assert_eq!(call(&mut os, &mut cpu, Sys::Recv, c as u32, BUF, 64), 2);
        assert_eq!(cpu.mem().read_bytes(BUF, 2).unwrap(), b"ta");
        assert_eq!(call(&mut os, &mut cpu, Sys::Recv, c as u32, BUF, 64), 5);
        assert_eq!(cpu.mem().read_bytes(BUF, 5).unwrap(), b"ilmsg");
        assert_eq!(call(&mut os, &mut cpu, Sys::Recv, c as u32, BUF, 64), 0);

        // Reset drops everything still queued on the session.
        let mut os =
            Os::new(WorldConfig::new().session(NetSessionHelper::msgs(&[b"first", b"second"])));
        os.set_io_faults(IoFaultPlan::new().on_call(0, IoFault::Reset));
        let sock = call(&mut os, &mut cpu, Sys::Socket, 0, 0, 0);
        let c = call(&mut os, &mut cpu, Sys::Accept, sock as u32, 0, 0);
        assert_eq!(call(&mut os, &mut cpu, Sys::Recv, c as u32, BUF, 64), -1);
        assert_eq!(call(&mut os, &mut cpu, Sys::Recv, c as u32, BUF, 64), 0);
    }

    #[test]
    fn brk_queries_and_moves() {
        let mut os = Os::new(WorldConfig::new());
        os.set_brk(0x1000_8000);
        let mut cpu = cpu();
        assert_eq!(call(&mut os, &mut cpu, Sys::Brk, 0, 0, 0), 0x1000_8000);
        assert_eq!(
            call(&mut os, &mut cpu, Sys::Brk, 0x1000_9000, 0, 0),
            0x1000_9000
        );
        assert_eq!(call(&mut os, &mut cpu, Sys::Brk, 0, 0, 0), 0x1000_9000);
    }

    #[test]
    fn exit_records_status() {
        let mut os = Os::new(WorldConfig::new());
        let mut cpu = cpu();
        assert_eq!(os.exit_status(), None);
        call(&mut os, &mut cpu, Sys::Exit, 7, 0, 0);
        assert_eq!(os.exit_status(), Some(7));
    }

    #[test]
    fn misc_syscalls() {
        let mut os = Os::new(WorldConfig::new().uid(42));
        let mut cpu = cpu();
        assert_eq!(call(&mut os, &mut cpu, Sys::GetUid, 0, 0, 0), 42);
        assert_eq!(call(&mut os, &mut cpu, Sys::GetPid, 0, 0, 0), 1);
        // Unknown syscall -> -1, simulation continues.
        cpu.regs_mut().set(Reg::V0, 9999, WordTaint::CLEAN);
        os.handle_syscall(&mut cpu);
        assert_eq!(cpu.regs().value(Reg::V0) as i32, -1);
    }

    #[test]
    fn syscall_numbers_roundtrip() {
        for sys in [
            Sys::Exit,
            Sys::Read,
            Sys::Write,
            Sys::Open,
            Sys::Close,
            Sys::Brk,
            Sys::GetPid,
            Sys::GetUid,
            Sys::Socket,
            Sys::Bind,
            Sys::Listen,
            Sys::Accept,
            Sys::Recv,
            Sys::Send,
        ] {
            assert_eq!(Sys::from_number(sys.number()), Some(sys));
        }
        assert_eq!(Sys::from_number(0), None);
    }

    #[test]
    fn fork_isolates_kernel_state_both_ways() {
        let mut os = Os::new(WorldConfig::new().stdin(b"parent-bytes".to_vec()));
        os.set_brk(0x1000_8000);
        let mut cpu_p = cpu();
        let mut cpu_c = cpu_p.fork();
        let mut child = os.fork();

        // The child drains stdin and moves its break; the parent sees
        // neither.
        assert_eq!(call(&mut child, &mut cpu_c, Sys::Read, 0, BUF, 64), 12);
        call(&mut child, &mut cpu_c, Sys::Brk, 0x1000_9000, 0, 0);
        assert_eq!(call(&mut os, &mut cpu_p, Sys::Read, 0, BUF, 64), 12);
        assert_eq!(call(&mut os, &mut cpu_p, Sys::Brk, 0, 0, 0), 0x1000_8000);

        // Descriptors opened in one fork do not exist in the other.
        let mut os = Os::new(WorldConfig::new().session(NetSessionHelper::msgs(&[b"hi"])));
        let sock = call(&mut os, &mut cpu_p, Sys::Socket, 0, 0, 0);
        let mut child = os.fork();
        let conn = call(&mut child, &mut cpu_c, Sys::Accept, sock as u32, 0, 0);
        assert!(conn > sock);
        assert_eq!(
            call(&mut os, &mut cpu_p, Sys::Recv, conn as u32, BUF, 8),
            -1
        );
        // The parent can still accept the same scripted peer itself.
        assert_eq!(
            call(&mut os, &mut cpu_p, Sys::Accept, sock as u32, 0, 0),
            conn
        );
    }

    #[test]
    fn record_then_replay_is_byte_exact_without_the_world() {
        let mut os = Os::new(WorldConfig::new().stdin(b"secret".to_vec()));
        let mut cpu1 = cpu();
        os.start_recording();
        assert_eq!(call(&mut os, &mut cpu1, Sys::GetPid, 0, 0, 0), 1);
        assert_eq!(call(&mut os, &mut cpu1, Sys::Read, 0, BUF, 64), 6);
        call(&mut os, &mut cpu1, Sys::Exit, 5, 0, 0);
        let journal = os.take_journal().expect("was recording");
        assert_eq!(journal.len(), 3);

        // Replay against an EMPTY world: results and delivered bytes come
        // from the journal alone.
        let mut os2 = Os::new(WorldConfig::new());
        let mut cpu2 = cpu();
        os2.start_replay(journal);
        assert_eq!(call(&mut os2, &mut cpu2, Sys::GetPid, 0, 0, 0), 1);
        assert_eq!(call(&mut os2, &mut cpu2, Sys::Read, 0, BUF, 64), 6);
        assert_eq!(cpu2.mem().read_bytes(BUF, 6).unwrap(), b"secret");
        assert!(cpu2.mem().read_taint(BUF, 6).unwrap().iter().all(|&t| t));
        assert_eq!(os2.tainted_input_bytes, 6);
        call(&mut os2, &mut cpu2, Sys::Exit, 5, 0, 0);
        assert_eq!(os2.exit_status(), Some(5));
        assert!(os2.take_replay_divergence().is_none());
    }

    #[test]
    fn replay_diverges_on_mismatched_call_and_past_the_end() {
        let mut os = Os::new(WorldConfig::new());
        let mut cpu1 = cpu();
        os.start_recording();
        call(&mut os, &mut cpu1, Sys::GetPid, 0, 0, 0);
        let journal = os.take_journal().unwrap();

        // Different syscall number at position 0.
        let mut os2 = Os::new(WorldConfig::new());
        let mut cpu2 = cpu();
        os2.start_replay(journal.clone());
        call(&mut os2, &mut cpu2, Sys::GetUid, 0, 0, 0);
        let d = os2.take_replay_divergence().expect("must diverge");
        assert_eq!(d.index, 0);
        assert!(d.expected.contains("syscall 20"));
        assert!(d.actual.contains("syscall 24"));

        // Matching call, then one call past the journal's end.
        let mut os3 = Os::new(WorldConfig::new());
        os3.start_replay(journal);
        assert_eq!(call(&mut os3, &mut cpu2, Sys::GetPid, 0, 0, 0), 1);
        call(&mut os3, &mut cpu2, Sys::GetPid, 0, 0, 0);
        let d = os3.take_replay_divergence().expect("must diverge");
        assert_eq!(d.index, 1);
        assert_eq!(d.expected, "<end of journal>");
    }

    #[test]
    fn forks_do_not_inherit_journal_state() {
        let mut os = Os::new(WorldConfig::new());
        let mut c = cpu();
        os.start_recording();
        call(&mut os, &mut c, Sys::GetPid, 0, 0, 0);
        let mut child = os.fork();
        // The child records nothing and replays nothing.
        call(&mut child, &mut c, Sys::GetUid, 0, 0, 0);
        assert!(child.take_journal().is_none());
        assert!(child.take_replay_divergence().is_none());
        // The parent's recording is unaffected by the fork.
        assert_eq!(os.take_journal().unwrap().len(), 1);
    }

    /// Test-local shim so tests read naturally.
    struct NetSessionHelper;
    impl NetSessionHelper {
        fn msgs(msgs: &[&[u8]]) -> crate::NetSession {
            crate::NetSession::new(msgs.iter().map(|m| m.to_vec()).collect())
        }
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use ptaint_cpu::DetectionPolicy;
    use ptaint_isa::Reg;
    use ptaint_mem::MemorySystem;
    use ptaint_mem::WordTaint;

    fn call(os: &mut Os, cpu: &mut Cpu, sys: Sys, a0: u32, a1: u32, a2: u32) -> i32 {
        cpu.regs_mut().set(Reg::V0, sys.number(), WordTaint::CLEAN);
        cpu.regs_mut().set(Reg::A0, a0, WordTaint::CLEAN);
        cpu.regs_mut().set(Reg::A1, a1, WordTaint::CLEAN);
        cpu.regs_mut().set(Reg::A2, a2, WordTaint::CLEAN);
        os.handle_syscall(cpu);
        cpu.regs().value(Reg::V0) as i32
    }

    #[test]
    fn io_on_wrong_descriptor_kinds_fails_cleanly() {
        let mut os = Os::new(crate::WorldConfig::new());
        let mut cpu = Cpu::new(MemorySystem::flat(), DetectionPolicy::PointerTaintedness);
        cpu.mem_mut().write_bytes(0x1000_0000, b"x", false).unwrap();
        // write to stdin, read from stdout: errors, not crashes.
        assert_eq!(call(&mut os, &mut cpu, Sys::Write, 0, 0x1000_0000, 1), -1);
        assert_eq!(call(&mut os, &mut cpu, Sys::Read, 1, 0x1000_0000, 1), -1);
        // recv on a non-socket, accept on a file.
        assert_eq!(call(&mut os, &mut cpu, Sys::Recv, 0, 0x1000_0000, 1), -1);
        assert_eq!(call(&mut os, &mut cpu, Sys::Accept, 0, 0, 0), -1);
        assert_eq!(call(&mut os, &mut cpu, Sys::Send, 2, 0x1000_0000, 1), -1);
        // bind/listen on a non-socket.
        assert_eq!(call(&mut os, &mut cpu, Sys::Bind, 9, 80, 0), -1);
        assert_eq!(call(&mut os, &mut cpu, Sys::Listen, 9, 0, 0), -1);
        // close of a bogus fd.
        assert_eq!(call(&mut os, &mut cpu, Sys::Close, 77, 0, 0), -1);
    }

    #[test]
    fn faulting_user_buffers_return_efault() {
        let mut os = Os::new(crate::WorldConfig::new().stdin(b"abc".to_vec()));
        let mut cpu = Cpu::new(MemorySystem::flat(), DetectionPolicy::PointerTaintedness);
        // Buffer inside the guard page: EFAULT, not a host panic.
        assert_eq!(call(&mut os, &mut cpu, Sys::Read, 0, 0x10, 3), -1);
        assert_eq!(call(&mut os, &mut cpu, Sys::Write, 1, 0x10, 3), -1);
        // Path pointer inside the guard page.
        assert_eq!(call(&mut os, &mut cpu, Sys::Open, 0x10, 0, 0), -1);
    }

    #[test]
    fn writes_to_read_only_files_fail() {
        let mut os = Os::new(crate::WorldConfig::new().file("/ro", b"data".to_vec()));
        let mut cpu = Cpu::new(MemorySystem::flat(), DetectionPolicy::PointerTaintedness);
        cpu.mem_mut()
            .write_bytes(0x1000_0000, b"/ro\0", false)
            .unwrap();
        let fd = call(&mut os, &mut cpu, Sys::Open, 0x1000_0000, 0, 0);
        assert!(fd >= 3);
        assert_eq!(
            call(&mut os, &mut cpu, Sys::Write, fd as u32, 0x1000_0000, 2),
            -1
        );
    }
}
