//! The world outside the simulated process: console, files, network peers.

use std::collections::HashMap;

/// One scripted network client session.
///
/// The guest's `accept()` produces one connection per session, in order. The
/// guest's `recv()` consumes the session's `messages` one at a time
/// (mirroring datagram-style `recv` boundaries: each call returns at most one
/// message, truncated to the buffer length). Data the guest `send()`s is
/// collected into the session transcript.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetSession {
    /// Messages the client will send, in order.
    pub messages: Vec<Vec<u8>>,
}

impl NetSession {
    /// A session from one or more client messages.
    #[must_use]
    pub fn new<M: Into<Vec<u8>>>(messages: Vec<M>) -> NetSession {
        NetSession {
            messages: messages.into_iter().map(Into::into).collect(),
        }
    }
}

/// Configuration of everything outside the process. Built with chained
/// setters, then passed to [`Os::new`](crate::Os::new).
///
/// ```
/// use ptaint_os::{NetSession, WorldConfig};
///
/// let world = WorldConfig::new()
///     .args(["traceroute", "-g", "123"])
///     .stdin(b"hello\n".to_vec())
///     .file("/etc/passwd", b"root:x:0:0::/root:/bin/sh\n".to_vec())
///     .session(NetSession::new(vec![b"GET / HTTP/1.0\r\n\r\n".to_vec()]));
/// assert_eq!(world.argv.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorldConfig {
    /// Command-line arguments (`argv[0]` is the program name). Their string
    /// bytes are tainted at load time.
    pub argv: Vec<Vec<u8>>,
    /// Environment strings (`NAME=value`). Tainted at load time.
    pub envp: Vec<Vec<u8>>,
    /// Bytes available on standard input; tainted when `read`.
    pub stdin: Vec<u8>,
    /// The in-memory file system: path → contents; tainted when `read`.
    pub files: HashMap<String, Vec<u8>>,
    /// Scripted clients connecting to the guest's listening socket.
    pub sessions: Vec<NetSession>,
    /// UID reported by `getuid` (0 = root, matching the daemons the paper
    /// attacks).
    pub uid: u32,
}

impl WorldConfig {
    /// An empty world: no input, no files, no network.
    #[must_use]
    pub fn new() -> WorldConfig {
        WorldConfig::default()
    }

    /// Sets `argv`.
    #[must_use]
    pub fn args<I, S>(mut self, args: I) -> WorldConfig
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u8]>,
    {
        self.argv = args.into_iter().map(|a| a.as_ref().to_vec()).collect();
        self
    }

    /// Adds one environment string (`NAME=value`).
    #[must_use]
    pub fn env(mut self, entry: impl AsRef<[u8]>) -> WorldConfig {
        self.envp.push(entry.as_ref().to_vec());
        self
    }

    /// Sets the bytes available on stdin.
    #[must_use]
    pub fn stdin(mut self, bytes: Vec<u8>) -> WorldConfig {
        self.stdin = bytes;
        self
    }

    /// Adds a file to the in-memory file system.
    #[must_use]
    pub fn file(mut self, path: impl Into<String>, contents: Vec<u8>) -> WorldConfig {
        self.files.insert(path.into(), contents);
        self
    }

    /// Adds a scripted client session.
    #[must_use]
    pub fn session(mut self, session: NetSession) -> WorldConfig {
        self.sessions.push(session);
        self
    }

    /// Sets the reported UID.
    #[must_use]
    pub fn uid(mut self, uid: u32) -> WorldConfig {
        self.uid = uid;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let w = WorldConfig::new()
            .args(["prog", "-x"])
            .env("PATH=/bin")
            .env("HOME=/root")
            .stdin(b"in".to_vec())
            .file("/a", b"A".to_vec())
            .file("/b", b"B".to_vec())
            .session(NetSession::new(vec![b"m1".to_vec(), b"m2".to_vec()]))
            .uid(1000);
        assert_eq!(w.argv, vec![b"prog".to_vec(), b"-x".to_vec()]);
        assert_eq!(w.envp.len(), 2);
        assert_eq!(w.stdin, b"in");
        assert_eq!(w.files.len(), 2);
        assert_eq!(w.sessions.len(), 1);
        assert_eq!(w.sessions[0].messages.len(), 2);
        assert_eq!(w.uid, 1000);
    }

    #[test]
    fn default_world_is_empty() {
        let w = WorldConfig::new();
        assert!(w.argv.is_empty() && w.envp.is_empty() && w.stdin.is_empty());
        assert!(w.files.is_empty() && w.sessions.is_empty());
        assert_eq!(w.uid, 0);
    }
}
