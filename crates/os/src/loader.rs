//! The program loader.

use ptaint_asm::Image;
use ptaint_cpu::{Cpu, DetectionPolicy};
use ptaint_isa::{Instr, Reg, ARG_BASE, PAGE_SIZE, STACK_TOP};
use ptaint_mem::{HierarchyConfig, MemorySystem, WordTaint};
use ptaint_trace::{Event, SharedObserver};

use crate::{Os, WorldConfig};

/// Byte length of the loader's [`exit_stub`] (4 words).
pub const EXIT_STUB_BYTES: u32 = 16;

/// The exit stub the loader appends directly after the text segment:
/// `move $a0,$v0 ; li $v0,1 ; syscall ; break 1`. The static analyzer and
/// the check-elision code watch must agree with the loader on these words,
/// so this function is the single source of truth.
#[must_use]
pub fn exit_stub() -> [Instr; 4] {
    [
        Instr::RAlu {
            op: ptaint_isa::RAluOp::Addu,
            rd: Reg::A0,
            rs: Reg::V0,
            rt: Reg::ZERO,
        },
        Instr::IAlu {
            op: ptaint_isa::IAluOp::Addiu,
            rt: Reg::V0,
            rs: Reg::ZERO,
            imm: 1, // Sys::Exit
        },
        Instr::Syscall,
        Instr::Break { code: 1 },
    ]
}

/// Maps `image` into a fresh machine and prepares the initial process state:
///
/// * text and data segments are written untainted (program bytes are
///   trusted);
/// * `argv` and `envp` **string bytes are written tainted** — command-line
///   arguments and environment variables are external input (paper §4.4);
///   the pointer arrays themselves are kernel-built and untainted;
/// * `$a0`/`$a1`/`$a2` receive `argc`/`argv`/`envp`; `$sp` points to an
///   aligned empty frame below [`STACK_TOP`]; `$ra` points to an exit stub
///   appended after the text segment, so `main` may simply return;
/// * the program break starts at the first page boundary after the data
///   segment.
///
/// Returns the CPU (PC at the image entry) and the kernel.
///
/// # Panics
///
/// Panics if the image is too large for its segment (not reachable with the
/// programs in this workspace).
#[must_use]
pub fn load(
    image: &Image,
    world: WorldConfig,
    policy: DetectionPolicy,
    hierarchy: HierarchyConfig,
) -> (Cpu, Os) {
    load_with_observer(image, world, policy, hierarchy, None)
}

/// Like [`load`], but also attaches a trace observer to the CPU before any
/// taint lands, so the `argv[i]` / `env[i]` string bytes are reported as
/// [`Event::TaintSource`]s and provenance can root chains in them.
#[must_use]
pub fn load_with_observer(
    image: &Image,
    world: WorldConfig,
    policy: DetectionPolicy,
    hierarchy: HierarchyConfig,
    observer: Option<SharedObserver>,
) -> (Cpu, Os) {
    let mut mem = MemorySystem::new(hierarchy);

    for (i, &word) in image.text.iter().enumerate() {
        mem.write_u32(image.text_base + 4 * i as u32, word, WordTaint::CLEAN)
            .expect("text segment must be mappable");
    }
    mem.write_bytes(image.data_base, &image.data, false)
        .expect("data segment must be mappable");

    // Exit stub after text: move $a0,$v0 ; li $v0,1 ; syscall ; break 1.
    let stub = image.text_end();
    for (i, insn) in exit_stub().iter().enumerate() {
        mem.write_u32(stub + 4 * i as u32, insn.encode(), WordTaint::CLEAN)
            .expect("exit stub must be mappable");
    }

    // argv/envp strings above the stack top (they are external input: tainted).
    let mut cursor = STACK_TOP;
    let mut write_strings = |mem: &mut MemorySystem, strings: &[Vec<u8>]| -> Vec<u32> {
        let mut ptrs = Vec::with_capacity(strings.len());
        for s in strings {
            cursor = (cursor + 3) & !3; // word-align each string start
            ptrs.push(cursor);
            mem.write_bytes(cursor, s, true).expect("arg strings fit");
            mem.write_u8(cursor + s.len() as u32, 0, false)
                .expect("arg strings fit");
            cursor += s.len() as u32 + 1;
        }
        ptrs
    };
    let argv_ptrs = write_strings(&mut mem, &world.argv);
    let envp_ptrs = write_strings(&mut mem, &world.envp);
    assert!(cursor < ARG_BASE, "argv/envp exceed the argument region");

    // Collect taint-source records while `world` is still ours; emitted once
    // the CPU exists and the observer is attached.
    let mut sources: Vec<(&'static str, String, u32, u32)> = Vec::new();
    if observer.is_some() {
        for (i, (&base, s)) in argv_ptrs.iter().zip(&world.argv).enumerate() {
            if !s.is_empty() {
                sources.push(("argv", format!("argv[{i}]"), base, s.len() as u32));
            }
        }
        for (i, (&base, s)) in envp_ptrs.iter().zip(&world.envp).enumerate() {
            if !s.is_empty() {
                sources.push(("env", format!("env[{i}]"), base, s.len() as u32));
            }
        }
    }

    // Pointer arrays (kernel-built, untainted), 4-aligned.
    cursor = (cursor + 3) & !3;
    let argv_array = cursor;
    for &p in &argv_ptrs {
        mem.write_u32(cursor, p, WordTaint::CLEAN)
            .expect("argv array fits");
        cursor += 4;
    }
    mem.write_u32(cursor, 0, WordTaint::CLEAN)
        .expect("argv array fits");
    cursor += 4;
    let envp_array = cursor;
    for &p in &envp_ptrs {
        mem.write_u32(cursor, p, WordTaint::CLEAN)
            .expect("envp array fits");
        cursor += 4;
    }
    mem.write_u32(cursor, 0, WordTaint::CLEAN)
        .expect("envp array fits");

    let argc = world.argv.len() as u32;
    let mut os = Os::new(world);
    os.set_brk(image.data_end().div_ceil(PAGE_SIZE) * PAGE_SIZE);

    let mut cpu = Cpu::new(mem, policy);
    cpu.set_observer(observer);
    for (kind, label, base, len) in sources {
        cpu.emit_event(&Event::TaintSource {
            kind,
            label,
            base,
            len,
        });
    }
    cpu.set_pc(image.entry);
    cpu.regs_mut().set(Reg::A0, argc, WordTaint::CLEAN);
    cpu.regs_mut().set(Reg::A1, argv_array, WordTaint::CLEAN);
    cpu.regs_mut().set(Reg::A2, envp_array, WordTaint::CLEAN);
    cpu.regs_mut()
        .set(Reg::SP, STACK_TOP - 64, WordTaint::CLEAN);
    cpu.regs_mut()
        .set(Reg::FP, STACK_TOP - 64, WordTaint::CLEAN);
    cpu.regs_mut()
        .set(Reg::GP, image.data_base + 0x8000, WordTaint::CLEAN);
    cpu.regs_mut().set(Reg::RA, stub, WordTaint::CLEAN);
    (cpu, os)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptaint_asm::assemble;

    #[test]
    fn loader_places_segments_and_registers() {
        let image = assemble(
            ".data
msg:    .asciiz \"hello\"
        .text
main:   li $v0, 0
        jr $ra",
        )
        .unwrap();
        let world = WorldConfig::new().args(["prog", "arg1"]).env("X=1");
        let (cpu, os) = load(
            &image,
            world,
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::flat(),
        );

        assert_eq!(cpu.pc(), image.entry);
        assert_eq!(cpu.regs().value(Reg::A0), 2);
        // argv[0] readable and tainted.
        let argv_array = cpu.regs().value(Reg::A1);
        let (argv0, t) = cpu.mem().memory().read_u32(argv_array).unwrap();
        assert!(!t.any(), "pointer array untainted");
        assert_eq!(cpu.mem().read_cstr(argv0, 64).unwrap(), b"prog");
        assert!(cpu.mem().read_taint(argv0, 4).unwrap().iter().all(|&x| x));
        // envp
        let envp_array = cpu.regs().value(Reg::A2);
        let (env0, _) = cpu.mem().memory().read_u32(envp_array).unwrap();
        assert_eq!(cpu.mem().read_cstr(env0, 64).unwrap(), b"X=1");
        // data
        assert_eq!(cpu.mem().read_cstr(image.data_base, 16).unwrap(), b"hello");
        // brk page-aligned past data
        assert_eq!(os.exit_status(), None);
        assert!(cpu.regs().value(Reg::SP) < STACK_TOP);
        assert_eq!(cpu.regs().value(Reg::SP) % 8, 0);
    }

    #[test]
    fn returning_from_main_exits_via_stub() {
        let image = assemble("main: li $v0, 5\n jr $ra").unwrap();
        let (mut cpu, mut os) = load(
            &image,
            WorldConfig::new(),
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::flat(),
        );
        let outcome = crate::run_to_exit(&mut cpu, &mut os, 100);
        assert_eq!(outcome.reason, crate::ExitReason::Exited(5));
    }
}
