#![warn(missing_docs)]

//! # ptaint-os — the virtual operating system substrate
//!
//! The paper's prototype modifies SimpleScalar's system-call module so that
//! all data delivered through `SYS_READ` (local I/O) and `SYS_RECV` (network
//! I/O) is **marked tainted** when it crosses from kernel space to user space
//! (§4.4). This crate is that kernel:
//!
//! * [`Sys`] — the syscall table (exit/read/write/open/close/brk/socket/
//!   bind/listen/accept/recv/send/…);
//! * [`WorldConfig`] — everything outside the process: stdin bytes, an
//!   in-memory file system, scripted network clients, `argv`/`envp`;
//! * [`Os`] — the runtime kernel state handling syscall traps against a
//!   `ptaint_cpu::Cpu`;
//! * [`load`] — the program loader: maps a [`ptaint_asm::Image`], builds the
//!   initial stack with `argv`/`envp` (whose *string bytes arrive tainted* —
//!   command-line arguments and environment variables are attacker-
//!   controllable external input per §4.4), and sets the program break;
//! * [`run_to_exit`] — the driver loop producing a [`RunOutcome`].
//!
//! Taint enters the system **only** here: through `read`/`recv` buffer
//! copies and the loader's `argv`/`envp` strings. Everything after that is
//! the CPU's Table-1 propagation.

mod faults;
mod journal;
mod loader;
mod os;
mod run;
mod world;

pub use faults::{IoFault, IoFaultPlan, EINTR};
pub use journal::{
    DeliveredInput, JournalEntry, JournalFormatError, ReplayDivergence, SyscallJournal,
};
pub use loader::{exit_stub, load, load_with_observer, EXIT_STUB_BYTES};
pub use os::{Os, Sys};
pub use run::{
    run_to_exit, run_to_exit_with, ExitReason, RunLimits, RunOutcome, StepHook, WATCHDOG_STRIDE,
};
pub use world::{NetSession, WorldConfig};
