//! The execution driver.

use std::fmt;

use ptaint_cpu::{Cpu, CpuException, ExecStats, SecurityAlert, StepEvent};
use ptaint_mem::MemFault;

use crate::Os;

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitReason {
    /// The process called `exit(status)` (or returned from `main`).
    Exited(i32),
    /// A pointer-taintedness detector fired; the OS terminated the process —
    /// the paper's successful detection outcome.
    Security(SecurityAlert),
    /// The process crashed on a memory fault (typical fate of an undetected
    /// attack on the unprotected baseline).
    MemFault(MemFault),
    /// The PC reached an undecodable word (e.g. control flow diverted into
    /// attacker data on the unprotected baseline).
    DecodeFault(u32),
    /// The program hit a `break` instruction.
    BreakTrap(u32),
    /// The step budget ran out before the program finished.
    StepLimit,
}

impl ExitReason {
    /// Whether the run ended in a security detection.
    #[must_use]
    pub fn is_detected(&self) -> bool {
        matches!(self, ExitReason::Security(_))
    }

    /// The alert, when the run was stopped by the detector.
    #[must_use]
    pub fn alert(&self) -> Option<&SecurityAlert> {
        match self {
            ExitReason::Security(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for ExitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitReason::Exited(code) => write!(f, "exited with status {code}"),
            ExitReason::Security(a) => write!(f, "SECURITY ALERT {a}"),
            ExitReason::MemFault(e) => write!(f, "crashed: {e}"),
            ExitReason::DecodeFault(pc) => write!(f, "crashed: illegal instruction at {pc:#010x}"),
            ExitReason::BreakTrap(code) => write!(f, "break trap {code:#x}"),
            ExitReason::StepLimit => write!(f, "step limit exhausted"),
        }
    }
}

/// Everything observable about a finished run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Why execution stopped.
    pub reason: ExitReason,
    /// CPU statistics.
    pub stats: ExecStats,
    /// Captured standard output.
    pub stdout: Vec<u8>,
    /// Captured standard error.
    pub stderr: Vec<u8>,
    /// Per-session bytes the guest sent to its network peers.
    pub transcripts: Vec<Vec<u8>>,
    /// Bytes the kernel delivered tainted (the §5.4 software-overhead
    /// quantity).
    pub tainted_input_bytes: u64,
}

impl RunOutcome {
    /// Stdout as a lossy string, for assertions and reports.
    #[must_use]
    pub fn stdout_text(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }
}

/// Runs `cpu` under `os` until exit, crash, detection, or `max_steps`.
///
/// `syscall` traps are serviced by the kernel; a pending `exit` ends the run
/// at the trap that requested it.
pub fn run_to_exit(cpu: &mut Cpu, os: &mut Os, max_steps: u64) -> RunOutcome {
    let mut reason = ExitReason::StepLimit;
    for _ in 0..max_steps {
        match cpu.step() {
            Ok(StepEvent::Executed) => {}
            Ok(StepEvent::SyscallTrap) => {
                os.handle_syscall(cpu);
                if let Some(status) = os.exit_status() {
                    reason = ExitReason::Exited(status);
                    break;
                }
                // §5.3 annotation extension: kernel buffer copies (read/
                // recv) may land tainted bytes inside an annotated region.
                if !cpu.taint_watches().is_empty() {
                    let pc = cpu.pc().wrapping_sub(4);
                    if let Some(alert) = cpu.scan_taint_watches(pc, ptaint_isa::Instr::Syscall) {
                        reason = ExitReason::Security(alert);
                        break;
                    }
                }
            }
            Ok(StepEvent::BreakTrap(code)) => {
                reason = ExitReason::BreakTrap(code);
                break;
            }
            Err(CpuException::Security(alert)) => {
                reason = ExitReason::Security(alert);
                break;
            }
            Err(CpuException::Mem(fault)) => {
                reason = ExitReason::MemFault(fault);
                break;
            }
            Err(CpuException::Decode { pc, .. }) => {
                reason = ExitReason::DecodeFault(pc);
                break;
            }
        }
    }
    RunOutcome {
        reason,
        stats: cpu.stats(),
        stdout: os.stdout().to_vec(),
        stderr: os.stderr().to_vec(),
        transcripts: os
            .session_transcripts()
            .iter()
            .map(|s| s.to_vec())
            .collect(),
        tainted_input_bytes: os.tainted_input_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{load, WorldConfig};
    use ptaint_asm::assemble;
    use ptaint_cpu::DetectionPolicy;
    use ptaint_mem::HierarchyConfig;

    fn run_program(src: &str, world: WorldConfig, policy: DetectionPolicy) -> RunOutcome {
        let image = assemble(src).unwrap();
        let (mut cpu, mut os) = load(&image, world, policy, HierarchyConfig::flat());
        run_to_exit(&mut cpu, &mut os, 100_000)
    }

    #[test]
    fn hello_world_via_syscalls() {
        let out = run_program(
            r#"
        .data
msg:    .ascii "hello, world\n"
        .text
main:   li $v0, 4        # write
        li $a0, 1        # stdout
        la $a1, msg
        li $a2, 13
        syscall
        li $v0, 1        # exit
        li $a0, 0
        syscall
        "#,
            WorldConfig::new(),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
        assert_eq!(out.stdout, b"hello, world\n");
        assert!(out.stats.instructions > 5);
    }

    #[test]
    fn echo_stdin_shows_taint_flow_without_alert() {
        // Reading tainted data and *copying* it is fine; only dereferencing a
        // tainted word as a pointer alerts.
        let out = run_program(
            r#"
        .data
buf:    .space 64
        .text
main:   li $v0, 3        # read(0, buf, 64)
        li $a0, 0
        la $a1, buf
        li $a2, 64
        syscall
        move $a2, $v0    # length actually read
        li $v0, 4        # write(1, buf, n)
        li $a0, 1
        la $a1, buf
        syscall
        li $v0, 1
        li $a0, 0
        syscall
        "#,
            WorldConfig::new().stdin(b"tainted text".to_vec()),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
        assert_eq!(out.stdout, b"tainted text");
        assert_eq!(out.tainted_input_bytes, 12);
    }

    #[test]
    fn dereferencing_input_as_pointer_is_detected() {
        // Load 4 input bytes as a word and dereference -> classic alert.
        let out = run_program(
            r#"
        .data
buf:    .space 8
        .text
main:   li $v0, 3
        li $a0, 0
        la $a1, buf
        li $a2, 8
        syscall
        la $t0, buf
        lw $t1, 0($t0)    # t1 = attacker word (tainted)
        lw $t2, 0($t1)    # dereference it -> ALERT
        li $v0, 1
        syscall
        "#,
            WorldConfig::new().stdin(b"aaaa".to_vec()),
            DetectionPolicy::PointerTaintedness,
        );
        let alert = out.reason.alert().expect("must be detected");
        assert_eq!(alert.pointer, 0x6161_6161);
        assert_eq!(alert.instr.to_string(), "lw $10,0($9)");
        assert!(out.reason.is_detected());
    }

    #[test]
    fn same_attack_crashes_undetected_without_protection() {
        let out = run_program(
            r#"
        .data
buf:    .space 8
        .text
main:   li $v0, 3
        li $a0, 0
        la $a1, buf
        li $a2, 8
        syscall
        la $t0, buf
        lw $t1, 0($t0)
        lw $t2, 0($t1)
        li $v0, 1
        syscall
        "#,
            WorldConfig::new().stdin(b"\x60aaa".to_vec()),
            DetectionPolicy::Off,
        );
        // 0x61616160 is unmapped but readable (sparse memory returns zeroes),
        // so the load succeeds silently — the attack would have proceeded.
        assert_eq!(out.reason, ExitReason::Exited(0));
        assert_eq!(out.stats.tainted_pointer_dereferences, 1);
    }

    #[test]
    fn argv_bytes_are_tainted_sources() {
        // Dereference argv[1]'s first word as a pointer -> alert.
        let out = run_program(
            r#"
        .text
main:   lw $t0, 4($a1)    # argv[1] pointer (untainted, kernel-built)
        lw $t1, 0($t0)    # the string bytes (tainted)
        lw $t2, 0($t1)    # dereference attacker word -> ALERT
        li $v0, 1
        syscall
        "#,
            WorldConfig::new().args(["prog", "AAAA"]),
            DetectionPolicy::PointerTaintedness,
        );
        let alert = out.reason.alert().expect("argv must be a taint source");
        assert_eq!(alert.pointer, 0x4141_4141);
    }

    #[test]
    fn step_limit_reports() {
        let out = run_program(
            "main: b main",
            WorldConfig::new(),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.reason, ExitReason::StepLimit);
    }

    #[test]
    fn exit_reason_display() {
        assert_eq!(ExitReason::Exited(0).to_string(), "exited with status 0");
        assert_eq!(ExitReason::StepLimit.to_string(), "step limit exhausted");
        assert!(ExitReason::DecodeFault(0x400000)
            .to_string()
            .contains("illegal instruction"));
    }
}
