//! The execution driver.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use ptaint_cpu::{Cpu, CpuException, ExecStats, SecurityAlert, StepEvent, Steppable};
use ptaint_mem::MemFault;
use ptaint_trace::json::escape;
use ptaint_trace::ToJson;

use crate::Os;

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitReason {
    /// The process called `exit(status)` (or returned from `main`).
    Exited(i32),
    /// A pointer-taintedness detector fired; the OS terminated the process —
    /// the paper's successful detection outcome.
    Security(SecurityAlert),
    /// The process crashed on a memory fault (typical fate of an undetected
    /// attack on the unprotected baseline).
    MemFault(MemFault),
    /// The PC reached an undecodable word (e.g. control flow diverted into
    /// attacker data on the unprotected baseline).
    DecodeFault(u32),
    /// The program hit a `break` instruction.
    BreakTrap(u32),
    /// The step budget ran out before the program finished.
    StepLimit,
    /// The host emulator panicked while executing the guest (a hardening
    /// backstop: any residual `unwrap()`/`panic!` reachable from guest state
    /// — including state corrupted by fault injection — is converted into
    /// this structured outcome instead of aborting the process).
    GuestFault(String),
    /// The wall-clock watchdog of [`RunLimits::watchdog`] expired before
    /// the program finished.
    Watchdog,
    /// A replayed run issued a syscall its journal did not record — the
    /// execution departed from the recorded timeline. Structured, never a
    /// panic: divergence is the forensic signal replay exists to surface.
    ReplayDivergence(crate::ReplayDivergence),
}

impl ExitReason {
    /// Whether the run ended in a security detection.
    #[must_use]
    pub fn is_detected(&self) -> bool {
        matches!(self, ExitReason::Security(_))
    }

    /// The alert, when the run was stopped by the detector.
    #[must_use]
    pub fn alert(&self) -> Option<&SecurityAlert> {
        match self {
            ExitReason::Security(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for ExitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitReason::Exited(code) => write!(f, "exited with status {code}"),
            ExitReason::Security(a) => write!(f, "SECURITY ALERT {a}"),
            ExitReason::MemFault(e) => write!(f, "crashed: {e}"),
            ExitReason::DecodeFault(pc) => write!(f, "crashed: illegal instruction at {pc:#010x}"),
            ExitReason::BreakTrap(code) => write!(f, "break trap {code:#x}"),
            ExitReason::StepLimit => write!(f, "step limit exhausted"),
            ExitReason::GuestFault(msg) => write!(f, "guest fault: {msg}"),
            ExitReason::Watchdog => write!(f, "watchdog expired"),
            ExitReason::ReplayDivergence(d) => write!(f, "{d}"),
        }
    }
}

impl ToJson for ExitReason {
    fn to_json(&self) -> String {
        match self {
            ExitReason::Exited(code) => format!("{{\"kind\":\"exited\",\"status\":{code}}}"),
            ExitReason::Security(a) => {
                format!(
                    "{{\"kind\":\"security\",\"alert\":{}}}",
                    escape(&a.to_string())
                )
            }
            ExitReason::MemFault(e) => {
                format!(
                    "{{\"kind\":\"mem_fault\",\"detail\":{}}}",
                    escape(&e.to_string())
                )
            }
            ExitReason::DecodeFault(pc) => {
                format!("{{\"kind\":\"decode_fault\",\"pc\":\"0x{pc:x}\"}}")
            }
            ExitReason::BreakTrap(code) => format!("{{\"kind\":\"break_trap\",\"code\":{code}}}"),
            ExitReason::StepLimit => "{\"kind\":\"step_limit\"}".to_string(),
            ExitReason::GuestFault(msg) => {
                format!("{{\"kind\":\"guest_fault\",\"detail\":{}}}", escape(msg))
            }
            // Deliberately carries no timing data, so campaign reports stay
            // byte-identical across hosts of different speeds.
            ExitReason::Watchdog => "{\"kind\":\"watchdog\"}".to_string(),
            ExitReason::ReplayDivergence(d) => {
                format!(
                    "{{\"kind\":\"replay_divergence\",\"index\":{},\"expected\":{},\"actual\":{}}}",
                    d.index,
                    escape(&d.expected),
                    escape(&d.actual)
                )
            }
        }
    }
}

/// Everything observable about a finished run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Why execution stopped.
    pub reason: ExitReason,
    /// CPU statistics.
    pub stats: ExecStats,
    /// Captured standard output.
    pub stdout: Vec<u8>,
    /// Captured standard error.
    pub stderr: Vec<u8>,
    /// Per-session bytes the guest sent to its network peers.
    pub transcripts: Vec<Vec<u8>>,
    /// Bytes the kernel delivered tainted (the §5.4 software-overhead
    /// quantity).
    pub tainted_input_bytes: u64,
}

impl RunOutcome {
    /// Stdout as a lossy string, for assertions and reports.
    #[must_use]
    pub fn stdout_text(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }
}

impl ToJson for RunOutcome {
    fn to_json(&self) -> String {
        format!(
            "{{\"reason\":{},\"stats\":{},\"tainted_input_bytes\":{}}}",
            self.reason.to_json(),
            self.stats.to_json(),
            self.tainted_input_bytes
        )
    }
}

/// Budgets on a run: a step count and an optional wall-clock watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Maximum instructions before [`ExitReason::StepLimit`].
    pub max_steps: u64,
    /// Wall-clock budget before [`ExitReason::Watchdog`], or `None` for no
    /// watchdog. The clock is polled every [`WATCHDOG_STRIDE`] steps, so
    /// enforcement is coarse but the per-step cost is one integer mask.
    pub watchdog: Option<Duration>,
}

impl RunLimits {
    /// A step budget with no watchdog — the classic limit.
    #[must_use]
    pub fn steps(max_steps: u64) -> RunLimits {
        RunLimits {
            max_steps,
            watchdog: None,
        }
    }

    /// Adds a wall-clock watchdog (builder).
    #[must_use]
    pub fn watchdog(mut self, limit: Duration) -> RunLimits {
        self.watchdog = Some(limit);
        self
    }
}

/// Steps between watchdog clock polls.
pub const WATCHDOG_STRIDE: u64 = 1 << 16;

/// A per-step callback invoked by [`run_to_exit_with`] *before* each step —
/// the attachment point for the fault-injection harness's state corruptions.
pub trait StepHook {
    /// Called before step `step` (0-based) executes, with the architectural
    /// CPU state open for inspection or corruption.
    fn on_step(&mut self, step: u64, cpu: &mut Cpu);
}

/// The no-op hook, for ordinary (uninjected) runs.
impl StepHook for () {
    fn on_step(&mut self, _step: u64, _cpu: &mut Cpu) {}
}

/// Runs `cpu` under `os` until exit, crash, detection, or `max_steps`.
///
/// `syscall` traps are serviced by the kernel; a pending `exit` ends the run
/// at the trap that requested it.
pub fn run_to_exit(cpu: &mut Cpu, os: &mut Os, max_steps: u64) -> RunOutcome {
    run_to_exit_with(cpu, os, RunLimits::steps(max_steps), &mut ())
}

/// The generalized driver behind [`run_to_exit`]: generic over the stepper
/// (functional [`Cpu`] or the pipelined timing model), with a wall-clock
/// watchdog and a per-step hook, and hardened so that **no outcome aborts
/// the host** — a panic reachable from guest or injected state is caught
/// and reported as [`ExitReason::GuestFault`].
pub fn run_to_exit_with<S: Steppable>(
    stepper: &mut S,
    os: &mut Os,
    limits: RunLimits,
    hook: &mut dyn StepHook,
) -> RunOutcome {
    let reason = catch_unwind(AssertUnwindSafe(|| drive(stepper, os, limits, hook)))
        .unwrap_or_else(|payload| ExitReason::GuestFault(panic_message(payload.as_ref())));
    RunOutcome {
        reason,
        stats: stepper.cpu().stats(),
        stdout: os.stdout().to_vec(),
        stderr: os.stderr().to_vec(),
        transcripts: os
            .session_transcripts()
            .iter()
            .map(|s| s.to_vec())
            .collect(),
        tainted_input_bytes: os.tainted_input_bytes,
    }
}

fn drive<S: Steppable>(
    stepper: &mut S,
    os: &mut Os,
    limits: RunLimits,
    hook: &mut dyn StepHook,
) -> ExitReason {
    let started = limits.watchdog.map(|_| Instant::now());
    for step in 0..limits.max_steps {
        if step & (WATCHDOG_STRIDE - 1) == 0 {
            if let (Some(t0), Some(budget)) = (started, limits.watchdog) {
                if t0.elapsed() >= budget {
                    return ExitReason::Watchdog;
                }
            }
        }
        hook.on_step(step, stepper.cpu_mut());
        match stepper.step() {
            Ok(StepEvent::Executed) => {}
            Ok(StepEvent::SyscallTrap) => {
                os.handle_syscall(stepper.cpu_mut());
                if let Some(d) = os.take_replay_divergence() {
                    return ExitReason::ReplayDivergence(d);
                }
                if let Some(status) = os.exit_status() {
                    return ExitReason::Exited(status);
                }
                // §5.3 annotation extension: kernel buffer copies (read/
                // recv) may land tainted bytes inside an annotated region.
                if !stepper.cpu().taint_watches().is_empty() {
                    let pc = stepper.cpu().pc().wrapping_sub(4);
                    if let Some(alert) = stepper
                        .cpu_mut()
                        .scan_taint_watches(pc, ptaint_isa::Instr::Syscall)
                    {
                        return ExitReason::Security(alert);
                    }
                }
            }
            Ok(StepEvent::BreakTrap(code)) => return ExitReason::BreakTrap(code),
            Err(CpuException::Security(alert)) => return ExitReason::Security(alert),
            Err(CpuException::Mem(fault)) => return ExitReason::MemFault(fault),
            Err(CpuException::Decode { pc, .. }) => return ExitReason::DecodeFault(pc),
        }
    }
    ExitReason::StepLimit
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{load, WorldConfig};
    use ptaint_asm::assemble;
    use ptaint_cpu::DetectionPolicy;
    use ptaint_mem::HierarchyConfig;

    fn run_program(src: &str, world: WorldConfig, policy: DetectionPolicy) -> RunOutcome {
        let image = assemble(src).unwrap();
        let (mut cpu, mut os) = load(&image, world, policy, HierarchyConfig::flat());
        run_to_exit(&mut cpu, &mut os, 100_000)
    }

    #[test]
    fn hello_world_via_syscalls() {
        let out = run_program(
            r#"
        .data
msg:    .ascii "hello, world\n"
        .text
main:   li $v0, 4        # write
        li $a0, 1        # stdout
        la $a1, msg
        li $a2, 13
        syscall
        li $v0, 1        # exit
        li $a0, 0
        syscall
        "#,
            WorldConfig::new(),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
        assert_eq!(out.stdout, b"hello, world\n");
        assert!(out.stats.instructions > 5);
    }

    #[test]
    fn echo_stdin_shows_taint_flow_without_alert() {
        // Reading tainted data and *copying* it is fine; only dereferencing a
        // tainted word as a pointer alerts.
        let out = run_program(
            r#"
        .data
buf:    .space 64
        .text
main:   li $v0, 3        # read(0, buf, 64)
        li $a0, 0
        la $a1, buf
        li $a2, 64
        syscall
        move $a2, $v0    # length actually read
        li $v0, 4        # write(1, buf, n)
        li $a0, 1
        la $a1, buf
        syscall
        li $v0, 1
        li $a0, 0
        syscall
        "#,
            WorldConfig::new().stdin(b"tainted text".to_vec()),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.reason, ExitReason::Exited(0));
        assert_eq!(out.stdout, b"tainted text");
        assert_eq!(out.tainted_input_bytes, 12);
    }

    #[test]
    fn dereferencing_input_as_pointer_is_detected() {
        // Load 4 input bytes as a word and dereference -> classic alert.
        let out = run_program(
            r#"
        .data
buf:    .space 8
        .text
main:   li $v0, 3
        li $a0, 0
        la $a1, buf
        li $a2, 8
        syscall
        la $t0, buf
        lw $t1, 0($t0)    # t1 = attacker word (tainted)
        lw $t2, 0($t1)    # dereference it -> ALERT
        li $v0, 1
        syscall
        "#,
            WorldConfig::new().stdin(b"aaaa".to_vec()),
            DetectionPolicy::PointerTaintedness,
        );
        let alert = out.reason.alert().expect("must be detected");
        assert_eq!(alert.pointer, 0x6161_6161);
        assert_eq!(alert.instr.to_string(), "lw $10,0($9)");
        assert!(out.reason.is_detected());
    }

    #[test]
    fn same_attack_crashes_undetected_without_protection() {
        let out = run_program(
            r#"
        .data
buf:    .space 8
        .text
main:   li $v0, 3
        li $a0, 0
        la $a1, buf
        li $a2, 8
        syscall
        la $t0, buf
        lw $t1, 0($t0)
        lw $t2, 0($t1)
        li $v0, 1
        syscall
        "#,
            WorldConfig::new().stdin(b"\x60aaa".to_vec()),
            DetectionPolicy::Off,
        );
        // 0x61616160 is unmapped but readable (sparse memory returns zeroes),
        // so the load succeeds silently — the attack would have proceeded.
        assert_eq!(out.reason, ExitReason::Exited(0));
        assert_eq!(out.stats.tainted_pointer_dereferences, 1);
    }

    #[test]
    fn argv_bytes_are_tainted_sources() {
        // Dereference argv[1]'s first word as a pointer -> alert.
        let out = run_program(
            r#"
        .text
main:   lw $t0, 4($a1)    # argv[1] pointer (untainted, kernel-built)
        lw $t1, 0($t0)    # the string bytes (tainted)
        lw $t2, 0($t1)    # dereference attacker word -> ALERT
        li $v0, 1
        syscall
        "#,
            WorldConfig::new().args(["prog", "AAAA"]),
            DetectionPolicy::PointerTaintedness,
        );
        let alert = out.reason.alert().expect("argv must be a taint source");
        assert_eq!(alert.pointer, 0x4141_4141);
    }

    #[test]
    fn step_limit_reports() {
        let out = run_program(
            "main: b main",
            WorldConfig::new(),
            DetectionPolicy::PointerTaintedness,
        );
        assert_eq!(out.reason, ExitReason::StepLimit);
    }

    #[test]
    fn exit_reason_display() {
        assert_eq!(ExitReason::Exited(0).to_string(), "exited with status 0");
        assert_eq!(ExitReason::StepLimit.to_string(), "step limit exhausted");
        assert!(ExitReason::DecodeFault(0x400000)
            .to_string()
            .contains("illegal instruction"));
        assert_eq!(
            ExitReason::GuestFault("boom".into()).to_string(),
            "guest fault: boom"
        );
        assert_eq!(ExitReason::Watchdog.to_string(), "watchdog expired");
    }

    #[test]
    fn exit_reason_json_is_stable() {
        assert_eq!(
            ExitReason::Exited(42).to_json(),
            "{\"kind\":\"exited\",\"status\":42}"
        );
        assert_eq!(ExitReason::StepLimit.to_json(), "{\"kind\":\"step_limit\"}");
        assert_eq!(
            ExitReason::GuestFault("index out of \"bounds\"".into()).to_json(),
            "{\"kind\":\"guest_fault\",\"detail\":\"index out of \\\"bounds\\\"\"}"
        );
        // Deliberately carries no timing data: watchdog outcomes must not
        // perturb byte-identical campaign reports.
        assert_eq!(ExitReason::Watchdog.to_json(), "{\"kind\":\"watchdog\"}");
        assert_eq!(
            ExitReason::DecodeFault(0x40_0000).to_json(),
            "{\"kind\":\"decode_fault\",\"pc\":\"0x400000\"}"
        );
    }

    #[test]
    fn run_outcome_json_embeds_reason_and_stats() {
        let out = run_program(
            "main: li $v0, 1\n li $a0, 7\n syscall",
            WorldConfig::new(),
            DetectionPolicy::PointerTaintedness,
        );
        let json = out.to_json();
        assert!(json.starts_with("{\"reason\":{\"kind\":\"exited\",\"status\":7}"));
        assert!(json.contains("\"stats\":{"));
        assert!(json.ends_with("\"tainted_input_bytes\":0}"));
    }

    #[test]
    fn watchdog_interrupts_infinite_loop() {
        let image = assemble("main: b main").unwrap();
        let (mut cpu, mut os) = load(
            &image,
            WorldConfig::new(),
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::flat(),
        );
        let limits = RunLimits::steps(u64::MAX).watchdog(Duration::from_millis(10));
        let out = run_to_exit_with(&mut cpu, &mut os, limits, &mut ());
        assert_eq!(out.reason, ExitReason::Watchdog);
    }

    #[test]
    fn step_hook_sees_every_step_and_can_mutate_state() {
        // The hook plants $v0=1/$a0=9 right before the guest's syscall step,
        // turning a would-be getpid into exit(9) — proving hooks observe the
        // step index and can corrupt architectural state mid-run.
        struct ForceExit;
        impl StepHook for ForceExit {
            fn on_step(&mut self, step: u64, cpu: &mut Cpu) {
                if step == 4 {
                    let regs = cpu.regs_mut();
                    regs.set(ptaint_isa::Reg::V0, 1, ptaint_mem::WordTaint::CLEAN);
                    regs.set(ptaint_isa::Reg::A0, 9, ptaint_mem::WordTaint::CLEAN);
                }
            }
        }
        let image = assemble("main: nop\n nop\n nop\n li $v0, 20\n syscall\n b main").unwrap();
        let (mut cpu, mut os) = load(
            &image,
            WorldConfig::new(),
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::flat(),
        );
        let out = run_to_exit_with(&mut cpu, &mut os, RunLimits::steps(100), &mut ForceExit);
        assert_eq!(out.reason, ExitReason::Exited(9));
    }

    #[test]
    fn recorded_run_replays_bit_identical_and_divergence_is_structured() {
        let src = r#"
        .data
buf:    .space 64
        .text
main:   li $v0, 3        # read(0, buf, 64)
        li $a0, 0
        la $a1, buf
        li $a2, 64
        syscall
        move $a2, $v0
        li $v0, 4        # write(1, buf, n)
        li $a0, 1
        la $a1, buf
        syscall
        li $v0, 1
        li $a0, 0
        syscall
        "#;
        let image = assemble(src).unwrap();
        let world = WorldConfig::new().stdin(b"journal me".to_vec());
        let (mut cpu, mut os) = load(
            &image,
            world,
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::flat(),
        );
        os.start_recording();
        let recorded = run_to_exit(&mut cpu, &mut os, 100_000);
        let journal = os.take_journal().expect("was recording");
        assert_eq!(recorded.reason, ExitReason::Exited(0));

        // Replay against an empty world: the outcome is bit-identical
        // except the console, which lives in the un-replayed kernel.
        let (mut cpu2, mut os2) = load(
            &image,
            WorldConfig::new(),
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::flat(),
        );
        os2.start_replay(journal.clone());
        let replayed = run_to_exit(&mut cpu2, &mut os2, 100_000);
        assert_eq!(replayed.reason, recorded.reason);
        assert_eq!(replayed.stats, recorded.stats);
        assert_eq!(replayed.tainted_input_bytes, recorded.tainted_input_bytes);

        // Replaying a DIFFERENT program against the same journal stops
        // with a structured divergence, not a panic.
        let other =
            assemble("main: li $v0, 20\n syscall\n li $v0, 1\n li $a0, 0\n syscall").unwrap();
        let (mut cpu3, mut os3) = load(
            &other,
            WorldConfig::new(),
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::flat(),
        );
        os3.start_replay(journal);
        let diverged = run_to_exit(&mut cpu3, &mut os3, 100_000);
        match &diverged.reason {
            ExitReason::ReplayDivergence(d) => {
                assert_eq!(d.index, 0);
                assert!(!diverged.reason.is_detected());
                assert!(diverged.reason.to_string().contains("replay diverged"));
                assert!(diverged
                    .reason
                    .to_json()
                    .starts_with("{\"kind\":\"replay_divergence\""));
            }
            other => panic!("expected ReplayDivergence, got {other:?}"),
        }
    }

    #[test]
    fn host_panic_is_reported_as_guest_fault() {
        struct PanicAtStep(u64);
        impl StepHook for PanicAtStep {
            fn on_step(&mut self, step: u64, _cpu: &mut Cpu) {
                assert!(step < self.0, "injected host panic at step {step}");
            }
        }
        let image = assemble("main: b main").unwrap();
        let (mut cpu, mut os) = load(
            &image,
            WorldConfig::new(),
            DetectionPolicy::PointerTaintedness,
            HierarchyConfig::flat(),
        );
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected backtrace
        let out = run_to_exit_with(
            &mut cpu,
            &mut os,
            RunLimits::steps(100),
            &mut PanicAtStep(5),
        );
        std::panic::set_hook(prev);
        match &out.reason {
            ExitReason::GuestFault(msg) => {
                assert!(msg.contains("injected host panic at step 5"), "{msg}");
            }
            other => panic!("expected GuestFault, got {other:?}"),
        }
    }
}
