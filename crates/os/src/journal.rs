//! Deterministic syscall record/replay.
//!
//! Record mode logs every syscall the kernel services — number, arguments,
//! result, and any tainted bytes delivered into guest memory. Replay mode
//! re-serves that journal byte-exactly *without consulting the world*: the
//! guest sees the same results, the same tainted bytes at the same
//! addresses, in the same order. Because everything the guest can observe
//! flows through `$v0` and delivered buffers, a replayed run is
//! instruction-exact with the recorded one.
//!
//! If the guest under replay issues a syscall the journal did not record
//! (different number, different arguments, or past the journal's end), the
//! run stops with a structured [`ReplayDivergence`] — never a panic. A
//! divergence means the execution being replayed is *not* the recorded one
//! (different image, different fault plan, nondeterminism), which is
//! precisely the forensic signal record/replay exists to surface.
//!
//! The on-disk format is a versioned line-oriented text file:
//!
//! ```text
//! ptaint-journal v1
//! syscall 3 0 268435456 64 -> 6
//! data 268435456 read 0 61747461636b
//! ```
//!
//! `syscall <number> <a0> <a1> <a2> -> <result>` per serviced call, followed
//! by an optional `data <buf> <source> <fd> <hex>` line when the call
//! delivered tainted bytes.

use std::fmt;

/// Magic first line of a serialized journal.
const HEADER: &str = "ptaint-journal v1";

/// Tainted bytes the kernel copied into a guest buffer while servicing one
/// syscall (`read`/`recv` delivery).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveredInput {
    /// Guest address the bytes landed at.
    pub buf: u32,
    /// The delivered bytes (journalled verbatim; re-served on replay).
    pub data: Vec<u8>,
    /// Taint-source name (`read` or `recv`), for provenance labels.
    pub source: String,
    /// Descriptor the guest read from, for provenance labels.
    pub fd: i32,
}

/// One serviced syscall: what the guest asked, what the kernel answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Syscall number (`$v0` at the trap).
    pub number: u32,
    /// Arguments (`$a0..$a2` at the trap).
    pub args: [u32; 3],
    /// Result written back to `$v0`.
    pub result: i32,
    /// Tainted bytes delivered into guest memory, if any.
    pub delivered: Option<DeliveredInput>,
}

impl JournalEntry {
    /// Human-readable call summary, used on both sides of a divergence
    /// report.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "syscall {} ({:#x}, {:#x}, {:#x})",
            self.number, self.args[0], self.args[1], self.args[2]
        )
    }
}

/// A recorded syscall sequence, replayable byte-exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyscallJournal {
    /// The serviced calls, in order.
    pub entries: Vec<JournalEntry>,
}

impl SyscallJournal {
    /// An empty journal (record mode starts here).
    #[must_use]
    pub fn new() -> SyscallJournal {
        SyscallJournal::default()
    }

    /// Number of recorded calls.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to the versioned text format (see module docs). The
    /// output is deterministic: same journal, same bytes.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for e in &self.entries {
            out.push_str(&format!(
                "syscall {} {} {} {} -> {}\n",
                e.number, e.args[0], e.args[1], e.args[2], e.result
            ));
            if let Some(d) = &e.delivered {
                out.push_str(&format!(
                    "data {} {} {} {}\n",
                    d.buf,
                    d.source,
                    d.fd,
                    hex_encode(&d.data)
                ));
            }
        }
        out
    }

    /// Parses the text format back into a journal.
    ///
    /// # Errors
    ///
    /// Returns a [`JournalFormatError`] naming the offending line on any
    /// header mismatch, malformed record, or dangling `data` line.
    pub fn from_text(text: &str) -> Result<SyscallJournal, JournalFormatError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, line)) if line.trim_end() == HEADER => {}
            _ => {
                return Err(JournalFormatError {
                    line: 1,
                    detail: format!("expected header `{HEADER}`"),
                })
            }
        }
        let mut journal = SyscallJournal::new();
        for (idx, line) in lines {
            let lineno = idx + 1;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let err = |detail: String| JournalFormatError {
                line: lineno,
                detail,
            };
            let mut fields = line.split_whitespace();
            match fields.next() {
                Some("syscall") => {
                    let mut num = |what: &str| -> Result<u32, JournalFormatError> {
                        fields
                            .next()
                            .and_then(|f| f.parse::<u32>().ok())
                            .ok_or_else(|| err(format!("bad or missing {what}")))
                    };
                    let number = num("syscall number")?;
                    let args = [num("a0")?, num("a1")?, num("a2")?];
                    if fields.next() != Some("->") {
                        return Err(err("expected `->` before result".to_string()));
                    }
                    let result = fields
                        .next()
                        .and_then(|f| f.parse::<i32>().ok())
                        .ok_or_else(|| err("bad or missing result".to_string()))?;
                    journal.entries.push(JournalEntry {
                        number,
                        args,
                        result,
                        delivered: None,
                    });
                }
                Some("data") => {
                    let buf = fields
                        .next()
                        .and_then(|f| f.parse::<u32>().ok())
                        .ok_or_else(|| err("bad or missing buffer address".to_string()))?;
                    let source = fields
                        .next()
                        .ok_or_else(|| err("missing source name".to_string()))?
                        .to_string();
                    let fd = fields
                        .next()
                        .and_then(|f| f.parse::<i32>().ok())
                        .ok_or_else(|| err("bad or missing fd".to_string()))?;
                    let data = hex_decode(
                        fields
                            .next()
                            .ok_or_else(|| err("missing hex payload".to_string()))?,
                    )
                    .map_err(&err)?;
                    let entry = journal
                        .entries
                        .last_mut()
                        .ok_or_else(|| err("data line before any syscall".to_string()))?;
                    if entry.delivered.is_some() {
                        return Err(err("second data line for one syscall".to_string()));
                    }
                    entry.delivered = Some(DeliveredInput {
                        buf,
                        data,
                        source,
                        fd,
                    });
                }
                Some(other) => {
                    return Err(err(format!("unknown record kind `{other}`")));
                }
                None => unreachable!("empty lines are skipped above"),
            }
        }
        Ok(journal)
    }
}

/// A malformed journal file: the line and what was wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalFormatError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub detail: String,
}

impl fmt::Display for JournalFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for JournalFormatError {}

/// Replay stopped because the guest issued a call the journal did not
/// record — a structured outcome, never a panic. The indices and call
/// summaries tell the forensic user *where* the execution being replayed
/// departed from the recorded one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// 0-based position in the journal where replay stopped.
    pub index: usize,
    /// What the journal recorded at that position (or `<end of journal>`).
    pub expected: String,
    /// What the guest actually issued.
    pub actual: String,
}

impl fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay diverged at call #{}: journal recorded {}, guest issued {}",
            self.index, self.expected, self.actual
        )
    }
}

fn hex_encode(data: &[u8]) -> String {
    use fmt::Write;
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        let _ = write!(s, "{b:02x}");
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex payload".to_string());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| "non-hex payload byte".to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SyscallJournal {
        SyscallJournal {
            entries: vec![
                JournalEntry {
                    number: 42,
                    args: [0, 0, 0],
                    result: 3,
                    delivered: None,
                },
                JournalEntry {
                    number: 46,
                    args: [3, 0x1000_0000, 64],
                    result: 5,
                    delivered: Some(DeliveredInput {
                        buf: 0x1000_0000,
                        data: b"GET /".to_vec(),
                        source: "recv".to_string(),
                        fd: 3,
                    }),
                },
                JournalEntry {
                    number: 1,
                    args: [0, 0, 0],
                    result: 0,
                    delivered: None,
                },
            ],
        }
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let journal = sample();
        let text = journal.to_text();
        assert!(text.starts_with("ptaint-journal v1\n"));
        assert_eq!(SyscallJournal::from_text(&text).unwrap(), journal);
        // Serialization is deterministic.
        assert_eq!(journal.to_text(), text);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(SyscallJournal::from_text("").is_err());
        assert!(SyscallJournal::from_text("not a journal\n").is_err());
        let bad_result = "ptaint-journal v1\nsyscall 3 0 0 0 -> x\n";
        assert_eq!(SyscallJournal::from_text(bad_result).unwrap_err().line, 2);
        let dangling_data = "ptaint-journal v1\ndata 0 read 0 00\n";
        assert!(SyscallJournal::from_text(dangling_data).is_err());
        let odd_hex = "ptaint-journal v1\nsyscall 3 0 0 0 -> 1\ndata 0 read 0 0\n";
        assert!(SyscallJournal::from_text(odd_hex).is_err());
        let double_data =
            "ptaint-journal v1\nsyscall 3 0 0 0 -> 1\ndata 0 read 0 00\ndata 0 read 0 00\n";
        assert!(SyscallJournal::from_text(double_data).is_err());
    }

    #[test]
    fn negative_results_roundtrip() {
        let journal = SyscallJournal {
            entries: vec![JournalEntry {
                number: 3,
                args: [9, 0, 0],
                result: -1,
                delivered: None,
            }],
        };
        let text = journal.to_text();
        assert!(text.contains("-> -1"));
        assert_eq!(SyscallJournal::from_text(&text).unwrap(), journal);
    }

    #[test]
    fn divergence_display_names_both_sides() {
        let d = ReplayDivergence {
            index: 4,
            expected: "syscall 3 (0x0, 0x1000, 0x40)".to_string(),
            actual: "syscall 4 (0x1, 0x1000, 0x40)".to_string(),
        };
        let msg = d.to_string();
        assert!(msg.contains("call #4"));
        assert!(msg.contains("recorded syscall 3"));
        assert!(msg.contains("issued syscall 4"));
    }
}
