//! Injectable I/O degradations for the taint-delivering syscalls.
//!
//! The paper's detector sits on the kernel→user boundary (§4.4): `read` and
//! `recv` are where taint enters the system. A dependability evaluation has
//! to exercise exactly that boundary under degraded conditions — short
//! reads, interrupted calls, connection resets, fragmented socket delivery —
//! because every libc and server in the guest corpus assumes the happy
//! path. An [`IoFaultPlan`] maps *taint-delivering call indices* to
//! [`IoFault`]s; the kernel model consults it on each delivery and applies
//! the scheduled degradation, so a seeded campaign replays byte-identically.

use std::collections::BTreeMap;

/// The errno-style result of an interrupted call (`-EINTR`), as the guest
/// sees it in `$v0`.
pub const EINTR: i32 = -4;

/// One injectable I/O degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Deliver at most `keep` bytes. On a socket message the remainder is
    /// *dropped* (truncated datagram); on stdin/file reads the remainder
    /// stays queued, so only this call's count shrinks.
    ShortRead {
        /// Maximum bytes delivered by the faulted call.
        keep: u32,
    },
    /// The call is interrupted before any data moves: returns [`EINTR`]
    /// and consumes nothing, like a signal landing mid-syscall.
    Eintr,
    /// Connection reset by peer: all remaining input on the session is
    /// dropped and the call returns `-1`. On non-socket descriptors this
    /// degrades to a plain transient I/O error.
    Reset,
    /// Deliver at most `keep` bytes and *requeue* the remainder — lossless
    /// stream fragmentation (a TCP segment boundary landing mid-message).
    Fragment {
        /// Maximum bytes delivered by the faulted call.
        keep: u32,
    },
}

impl IoFault {
    /// Machine-readable kind name, used in `fault_injected` trace events
    /// and campaign reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            IoFault::ShortRead { .. } => "short_read",
            IoFault::Eintr => "eintr",
            IoFault::Reset => "conn_reset",
            IoFault::Fragment { .. } => "fragment",
        }
    }

    /// The delivery cap, for the two truncating kinds.
    #[must_use]
    pub const fn keep(self) -> Option<u32> {
        match self {
            IoFault::ShortRead { keep } | IoFault::Fragment { keep } => Some(keep),
            IoFault::Eintr | IoFault::Reset => None,
        }
    }
}

/// A deterministic schedule of I/O faults, keyed by the 0-based index of
/// the taint-delivering call (`read`/`recv` deliveries, counted together in
/// service order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    faults: BTreeMap<u64, IoFault>,
}

impl IoFaultPlan {
    /// An empty plan (no degradation — the default for every run).
    #[must_use]
    pub fn new() -> IoFaultPlan {
        IoFaultPlan::default()
    }

    /// Schedules `fault` on the `call`-th taint-delivering call (builder).
    #[must_use]
    pub fn on_call(mut self, call: u64, fault: IoFault) -> IoFaultPlan {
        self.faults.insert(call, fault);
        self
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault scheduled for call index `call`, if any.
    #[must_use]
    pub fn at(&self, call: u64) -> Option<IoFault> {
        self.faults.get(&call).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_schedules_by_call_index() {
        let plan = IoFaultPlan::new()
            .on_call(0, IoFault::Eintr)
            .on_call(2, IoFault::ShortRead { keep: 3 });
        assert!(!plan.is_empty());
        assert_eq!(plan.at(0), Some(IoFault::Eintr));
        assert_eq!(plan.at(1), None);
        assert_eq!(plan.at(2), Some(IoFault::ShortRead { keep: 3 }));
        assert!(IoFaultPlan::new().is_empty());
    }

    #[test]
    fn names_and_caps() {
        assert_eq!(IoFault::ShortRead { keep: 1 }.name(), "short_read");
        assert_eq!(IoFault::Eintr.name(), "eintr");
        assert_eq!(IoFault::Reset.name(), "conn_reset");
        assert_eq!(IoFault::Fragment { keep: 8 }.name(), "fragment");
        assert_eq!(IoFault::Fragment { keep: 8 }.keep(), Some(8));
        assert_eq!(IoFault::Reset.keep(), None);
    }
}
