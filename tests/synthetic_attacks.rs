//! Integration: Figure 2 / §5.1.1 — the synthetic attack suite through the
//! public `ptaint` API.

use ptaint::{AlertKind, DetectionPolicy, ExitReason, Machine, WorldConfig};
use ptaint_guest::apps::synthetic;

#[test]
fn stack_smash_alert_matches_the_paper() {
    let m = Machine::from_c(synthetic::EXP1_SOURCE)
        .unwrap()
        .world(synthetic::exp1_attack_world());
    let out = m.run();
    let alert = out.reason.alert().expect("detected");
    // Paper §5.1.1: "an alert is raised at the return instruction (JR $31)
    // of exp1(), which indicates that the return address is tainted as
    // 0x61616161".
    assert_eq!(alert.instr.to_string(), "jr $31");
    assert_eq!(alert.pointer, 0x6161_6161);
    assert_eq!(alert.kind, AlertKind::JumpPointer);
    assert!(alert.taint.any());
}

#[test]
fn heap_corruption_alert_fires_inside_free() {
    let m = Machine::from_c(synthetic::EXP2_SOURCE)
        .unwrap()
        .world(synthetic::exp2_attack_world());
    let out = m.run();
    let alert = out.reason.alert().expect("detected");
    assert_eq!(alert.kind, AlertKind::DataPointer);
    // The tainted link is built from 'a' bytes.
    assert_eq!(alert.pointer & 0xff00_0000, 0x6100_0000);
    // Inside the allocator, per the image's symbol table.
    let unlink = m.image().symbol("__unlink").unwrap();
    assert!((unlink..unlink + 0x100).contains(&alert.pc));
}

#[test]
fn format_string_alert_dereferences_abcd() {
    let m = Machine::from_c(synthetic::EXP3_SOURCE).unwrap();
    // Probe pads like an attacker.
    let detected = (0..16).find_map(|pad| {
        let out = m.clone().world(synthetic::exp3_attack_world(pad)).run();
        out.reason
            .alert()
            .copied()
            .filter(|a| a.pointer == 0x6463_6261)
    });
    let alert = detected.expect("some pad reaches the buffer");
    assert_eq!(alert.kind, AlertKind::DataPointer);
    assert!(alert.instr.to_string().starts_with("sw "));
}

#[test]
fn synthetic_attacks_do_not_fire_on_benign_inputs() {
    for (source, world) in [
        (synthetic::EXP1_SOURCE, synthetic::exp1_benign_world()),
        (synthetic::EXP2_SOURCE, synthetic::exp2_benign_world()),
        (synthetic::EXP3_SOURCE, synthetic::exp3_benign_world()),
    ] {
        let out = Machine::from_c(source).unwrap().world(world).run();
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
    }
}

#[test]
fn detection_works_identically_with_caches_enabled() {
    // Taintedness travels through the cache hierarchy (§4.1): enabling
    // L1/L2 must not change what is detected.
    let m = Machine::from_c(synthetic::EXP1_SOURCE)
        .unwrap()
        .world(synthetic::exp1_attack_world())
        .hierarchy(ptaint::HierarchyConfig::two_level());
    let out = m.run();
    let alert = out.reason.alert().expect("detected through caches");
    assert_eq!(alert.pointer, 0x6161_6161);
}

#[test]
fn exp1_detected_under_both_detecting_policies_but_not_off() {
    let m = Machine::from_c(synthetic::EXP1_SOURCE)
        .unwrap()
        .world(synthetic::exp1_attack_world());
    assert!(m
        .clone()
        .policy(DetectionPolicy::PointerTaintedness)
        .run()
        .reason
        .is_detected());
    assert!(m
        .clone()
        .policy(DetectionPolicy::ControlOnly)
        .run()
        .reason
        .is_detected());
    assert!(!m.policy(DetectionPolicy::Off).run().reason.is_detected());
}

#[test]
fn non_control_synthetic_attacks_are_invisible_to_the_baseline() {
    for (source, world) in [
        (synthetic::EXP2_SOURCE, synthetic::exp2_attack_world()),
        (synthetic::EXP3_SOURCE, synthetic::exp3_attack_world(1)),
    ] {
        let out = Machine::from_c(source)
            .unwrap()
            .world(world)
            .policy(DetectionPolicy::ControlOnly)
            .run();
        assert!(!out.reason.is_detected(), "{:?}", out.reason);
    }
}

#[test]
fn attack_world_tainted_bytes_are_accounted() {
    let m = Machine::from_c(synthetic::EXP1_SOURCE)
        .unwrap()
        .world(WorldConfig::new().stdin(vec![b'a'; 24]));
    let out = m.run();
    assert_eq!(out.tainted_input_bytes, 24);
    assert!(out.stats.tainted_operand_instructions > 0);
}
