//! Robustness properties of the whole stack: detection must be stable
//! under environmental noise, and the timing model must stay consistent
//! with the functional machine.

use proptest::prelude::*;
use ptaint::{DetectionPolicy, ExitReason, Machine, WorldConfig};
use ptaint_guest::apps::synthetic;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The exp1 detection is invariant under unrelated environmental noise:
    /// extra env strings and argv entries (all tainted at load) never mask
    /// the alert and never change what is reported.
    #[test]
    fn stack_smash_detection_is_noise_invariant(
        envs in proptest::collection::vec("[A-Z]{1,8}=[a-z0-9]{0,12}", 0..6),
        extra_args in proptest::collection::vec("[a-z0-9./-]{1,16}", 0..4),
    ) {
        let mut world = WorldConfig::new().stdin(vec![b'a'; 24]);
        let mut argv = vec!["exp1".to_owned()];
        argv.extend(extra_args);
        world = world.args(argv);
        for e in &envs {
            world = world.env(e);
        }
        let out = Machine::from_c(synthetic::EXP1_SOURCE)
            .unwrap()
            .world(world)
            .run();
        let alert = out.reason.alert().expect("still detected");
        prop_assert_eq!(alert.pointer, 0x6161_6161);
        prop_assert_eq!(alert.instr.to_string(), "jr $31");
    }

    /// Overflow length sweep. exp1's buffer holds 10 bytes ending right at
    /// the saved frame pointer (Figure 2's layout), and `scanf("%s")`
    /// appends an *untainted* NUL terminator:
    ///
    /// * `len <= 9` — payload and terminator stay inside the buffer: clean;
    /// * `len == 10` — the terminator (a constant written by the program,
    ///   hence untainted) zeroes one byte of the saved frame pointer:
    ///   corruption *without taint*, which pointer-taintedness detection by
    ///   design cannot see — the process later crashes wild, like the
    ///   Table 4 scenarios;
    /// * `len >= 11` — tainted payload bytes reach the saved frame pointer;
    ///   the epilogue restores it, `$sp` inherits the taint, and the next
    ///   frame access is a tainted dereference — detected;
    /// * `len >= 22` — the full return address is attacker bytes: the
    ///   paper's `jr $31` detection.
    #[test]
    fn overflow_length_boundary(len in 1usize..30) {
        let out = Machine::from_c(synthetic::EXP1_SOURCE)
            .unwrap()
            .world(WorldConfig::new().stdin(vec![b'a'; len]))
            .run();
        if len <= 9 {
            prop_assert_eq!(&out.reason, &ExitReason::Exited(0));
        } else if len == 10 {
            // Untainted-NUL corruption: undetected (and in this layout the
            // zeroed low byte sends the frame pointer into a crash).
            prop_assert!(!out.reason.is_detected(), "len 10: {:?}", out.reason);
        } else {
            let alert = out.reason.alert().expect("frame corruption detected");
            if len >= 22 {
                prop_assert_eq!(alert.instr.to_string(), "jr $31");
            }
        }
    }

    /// Functional and pipelined execution always agree on outcome and
    /// retired-instruction count for benign programs with arbitrary input.
    #[test]
    fn pipeline_functional_equivalence(input in proptest::collection::vec(any::<u8>(), 0..64)) {
        let m = Machine::from_c(
            r#"int main() {
                char buf[128];
                int i;
                int n = read(0, buf, 100);
                int acc = 7;
                for (i = 0; i < n; i++) acc = acc * 31 + (buf[i] & 0xff);
                printf("%x\n", acc);
                return 0;
            }"#,
        )
        .unwrap()
        .world(WorldConfig::new().stdin(input));
        let plain = m.run();
        let (piped, report) = m.run_pipelined();
        prop_assert_eq!(&plain.reason, &piped.reason);
        prop_assert_eq!(plain.stdout, piped.stdout);
        prop_assert_eq!(plain.stats.instructions, report.instructions);
        prop_assert!(report.cycles >= report.instructions);
    }
}

/// The two boundary lengths `overflow_length_boundary` once shrank to
/// (`robustness.proptest-regressions`), promoted to named deterministic
/// regressions: they now run on every `cargo test` by construction, not
/// only when the proptest seed file is honored.
#[test]
fn regression_len_10_untainted_nul_corruption_is_invisible_by_design() {
    // The `scanf("%s")` terminator is a program constant, hence untainted:
    // it zeroes one byte of the saved frame pointer and the process crashes
    // wild without a taint alert — the Table 4 blind spot, pinned.
    let out = Machine::from_c(synthetic::EXP1_SOURCE)
        .unwrap()
        .world(WorldConfig::new().stdin(vec![b'a'; 10]))
        .run();
    assert!(!out.reason.is_detected(), "len 10: {:?}", out.reason);
    assert_ne!(out.reason, ExitReason::Exited(0), "len 10 must still crash");
}

#[test]
fn regression_len_11_first_tainted_frame_byte_is_detected() {
    // One byte past the untainted-NUL boundary: a tainted payload byte
    // reaches the saved frame pointer, the epilogue restores it, and the
    // next frame access is a tainted dereference.
    let out = Machine::from_c(synthetic::EXP1_SOURCE)
        .unwrap()
        .world(WorldConfig::new().stdin(vec![b'a'; 11]))
        .run();
    out.reason
        .alert()
        .expect("len 11: frame corruption detected");
}

#[test]
fn detection_point_is_deterministic_across_repeated_runs() {
    let m = Machine::from_c(synthetic::EXP2_SOURCE)
        .unwrap()
        .world(synthetic::exp2_attack_world());
    let first = m.run();
    for _ in 0..5 {
        let again = m.run();
        assert_eq!(first.reason, again.reason);
        assert_eq!(first.stats.instructions, again.stats.instructions);
    }
}

#[test]
fn step_limited_attack_still_reports_truthfully() {
    // With a budget too small to reach the vulnerable code, the run ends at
    // the limit without claiming detection.
    let out = Machine::from_c(synthetic::EXP1_SOURCE)
        .unwrap()
        .world(synthetic::exp1_attack_world())
        .step_limit(50)
        .run();
    assert_eq!(out.reason, ExitReason::StepLimit);
}

#[test]
fn all_three_policies_agree_on_fully_benign_programs() {
    let m = Machine::from_c(
        r#"int main() {
            int i; int s = 0;
            for (i = 0; i < 50; i++) s += i;
            printf("%d", s);
            return 0;
        }"#,
    )
    .unwrap();
    for policy in [
        DetectionPolicy::Off,
        DetectionPolicy::ControlOnly,
        DetectionPolicy::PointerTaintedness,
    ] {
        let out = m.clone().policy(policy).run();
        assert_eq!(out.stdout_text(), "1225", "{policy}");
    }
}
