//! Integration: §5.1.2 — the four real-world-style attacks, each verified
//! under all three protection policies.

use ptaint::{AlertKind, DetectionPolicy, ExitReason, HierarchyConfig, Machine};
use ptaint_guest::apps::{calibrate_format_pad, ghttpd, null_httpd, traceroute, wu_ftpd};

#[test]
fn wu_ftpd_format_string_full_story() {
    let m = Machine::from_c(wu_ftpd::SOURCE).unwrap();
    let target = wu_ftpd::uid_address(m.image());
    let pad = calibrate_format_pad(
        m.image(),
        |p| wu_ftpd::attack_world(m.image(), p),
        target,
        48,
    )
    .expect("calibrates");
    let world = wu_ftpd::attack_world(m.image(), pad);

    // Full detection: Table 2's alert — a store-word through the tainted
    // uid address, raised inside the formatter.
    let out = m.clone().world(world.clone()).run();
    let alert = out.reason.alert().expect("detected");
    assert_eq!(alert.kind, AlertKind::DataPointer);
    assert_eq!(alert.pointer, target);

    // Control-only baseline: blind (non-control-data attack), and the
    // compromise actually lands — the privileged STOR is accepted.
    let out = m
        .clone()
        .policy(DetectionPolicy::ControlOnly)
        .world(world.clone())
        .run();
    assert!(!out.reason.is_detected());
    let t = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
    assert!(t.contains("226 transfer complete"), "{t}");

    // Unprotected: same compromise.
    let out = m.policy(DetectionPolicy::Off).world(world).run();
    assert_eq!(out.reason, ExitReason::Exited(0));
}

#[test]
fn wu_ftpd_detection_survives_the_cache_hierarchy() {
    let m = Machine::from_c(wu_ftpd::SOURCE)
        .unwrap()
        .hierarchy(HierarchyConfig::two_level());
    let target = wu_ftpd::uid_address(m.image());
    let pad = calibrate_format_pad(
        m.image(),
        |p| wu_ftpd::attack_world(m.image(), p),
        target,
        48,
    )
    .expect("calibrates");
    let world = wu_ftpd::attack_world(m.image(), pad);
    let out = m.world(world).run();
    assert_eq!(out.reason.alert().expect("detected").pointer, target);
}

#[test]
fn null_httpd_heap_attack_full_story() {
    let m = Machine::from_c(null_httpd::SOURCE).unwrap();
    let world = null_httpd::attack_world(m.image());

    let out = m.clone().world(world.clone()).run();
    let alert = out.reason.alert().expect("detected");
    assert_eq!(alert.kind, AlertKind::DataPointer);
    assert_eq!(alert.pointer, m.image().symbol("conf").unwrap());

    // Baseline and unprotected: the CGI root is retargeted and the fake
    // shell executes.
    for policy in [DetectionPolicy::ControlOnly, DetectionPolicy::Off] {
        let out = m.clone().policy(policy).world(world.clone()).run();
        assert!(!out.reason.is_detected(), "{policy}");
        let t = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
        assert!(t.contains("EXEC /bin/sh"), "{policy}: {t}");
    }
}

#[test]
fn ghttpd_url_pointer_attack_full_story() {
    let m = Machine::from_c(ghttpd::SOURCE).unwrap();
    let world = ghttpd::attack_world(m.image());

    let out = m.clone().world(world.clone()).run();
    let alert = out.reason.alert().expect("detected");
    // Paper: stopped at a load-byte (LB) dereferencing the tainted URL ptr.
    assert!(alert.instr.to_string().starts_with("lb"), "{}", alert.instr);

    let out = m
        .clone()
        .policy(DetectionPolicy::Off)
        .world(world.clone())
        .run();
    let t = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
    assert!(t.contains("/../../../../bin/sh"), "policy bypass: {t}");

    let out = m.policy(DetectionPolicy::ControlOnly).world(world).run();
    assert!(!out.reason.is_detected());
}

#[test]
fn traceroute_double_free_full_story() {
    let m = Machine::from_c(traceroute::SOURCE).unwrap();
    let world = traceroute::attack_world();

    let out = m.clone().world(world.clone()).run();
    let alert = out.reason.alert().expect("detected");
    // The dereferenced pointer is assembled from the argv string "5.6.7.8".
    assert_eq!(alert.pointer, 0x2e36_2e35 + 12);

    // Unprotected, the paper reports a crash — ours too.
    let out = m
        .clone()
        .policy(DetectionPolicy::Off)
        .world(world.clone())
        .run();
    assert!(
        matches!(out.reason, ExitReason::MemFault(_)),
        "{:?}",
        out.reason
    );

    let out = m.policy(DetectionPolicy::ControlOnly).world(world).run();
    assert!(!out.reason.is_detected());
}

#[test]
fn all_daemons_serve_benign_sessions_cleanly_under_full_detection() {
    for (source, world) in [
        (wu_ftpd::SOURCE, wu_ftpd::benign_world()),
        (null_httpd::SOURCE, null_httpd::benign_world()),
        (ghttpd::SOURCE, ghttpd::benign_world()),
        (traceroute::SOURCE, traceroute::benign_world()),
    ] {
        let out = Machine::from_c(source).unwrap().world(world).run();
        assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
    }
}

#[test]
fn benign_sessions_also_clean_with_caches() {
    let out = Machine::from_c(wu_ftpd::SOURCE)
        .unwrap()
        .world(wu_ftpd::benign_world())
        .hierarchy(HierarchyConfig::two_level())
        .run();
    assert_eq!(out.reason, ExitReason::Exited(0));
}
