//! Integration: the predecoded/cached engine is a pure performance
//! transformation — for every guest program in the repository (the Figure 2
//! synthetics, the §5.1.2 real-world attacks, the Table 4 false-negative
//! trio, and the Table 3 workloads, attack and benign inputs alike) it must
//! produce bit-identical architectural results to the legacy interpreter:
//! same exit reason, same alert, same stdout/stderr/transcripts, same
//! retired-instruction statistics. Only the decode-cache counters (engine
//! activity, not guest-visible behaviour) may differ, so those are
//! normalized away with [`ExecStats::without_decode_cache`].

use ptaint::{Engine, Machine, RunOutcome};
use ptaint_guest::apps::{
    calibrate_format_pad, dispatchd, ghttpd, globd, null_httpd, synthetic, table4, traceroute,
    wu_ftpd,
};
use ptaint_guest::workloads;

/// Runs `machine` under both engines and asserts they agree on everything
/// architecturally observable. Returns the cached outcome for extra,
/// scenario-specific assertions.
fn assert_engines_agree(label: &str, machine: &Machine) -> RunOutcome {
    let cached = machine.clone().engine(Engine::Cached).run();
    let interp = machine.clone().engine(Engine::Interp).run();

    // The engines really were different: the cache dispatched most steps,
    // the interpreter never touched it.
    assert!(
        cached.stats.decode_cache_hits > 0,
        "{label}: cached engine never hit its decode cache"
    );
    assert_eq!(
        (
            interp.stats.decode_cache_hits,
            interp.stats.decode_cache_misses,
            interp.stats.decode_cache_invalidations,
        ),
        (0, 0, 0),
        "{label}: interpreter touched the decode cache"
    );

    let mut normalized = cached.clone();
    normalized.stats = normalized.stats.without_decode_cache();
    let mut oracle = interp;
    oracle.stats = oracle.stats.without_decode_cache();
    assert_eq!(normalized, oracle, "{label}: engines diverged");
    cached
}

#[test]
fn synthetic_attacks_and_benign_runs_agree() {
    for (label, source, world) in [
        (
            "exp1/attack",
            synthetic::EXP1_SOURCE,
            synthetic::exp1_attack_world(),
        ),
        (
            "exp1/benign",
            synthetic::EXP1_SOURCE,
            synthetic::exp1_benign_world(),
        ),
        (
            "exp2/attack",
            synthetic::EXP2_SOURCE,
            synthetic::exp2_attack_world(),
        ),
        (
            "exp2/benign",
            synthetic::EXP2_SOURCE,
            synthetic::exp2_benign_world(),
        ),
        (
            "exp3/benign",
            synthetic::EXP3_SOURCE,
            synthetic::exp3_benign_world(),
        ),
    ] {
        let m = Machine::from_c(source).unwrap().world(world);
        assert_engines_agree(label, &m);
    }

    // exp3's attack needs a calibrated pad; probe with the plain machine
    // (the attack either alerts or not — both engines must say the same).
    let m = Machine::from_c(synthetic::EXP3_SOURCE).unwrap();
    for pad in 0..8 {
        let m = m.clone().world(synthetic::exp3_attack_world(pad));
        assert_engines_agree(&format!("exp3/attack pad={pad}"), &m);
    }
}

#[test]
fn real_world_attacks_agree() {
    // WU-FTPD: format string overwriting the uid word (Table 2).
    let m = Machine::from_c(wu_ftpd::SOURCE).unwrap();
    let target = wu_ftpd::uid_address(m.image());
    let pad = calibrate_format_pad(
        m.image(),
        |p| wu_ftpd::attack_world(m.image(), p),
        target,
        48,
    )
    .expect("calibrates");
    let attack = m.clone().world(wu_ftpd::attack_world(m.image(), pad));
    let out = assert_engines_agree("wu_ftpd/attack", &attack);
    assert_eq!(out.reason.alert().expect("detected").pointer, target);
    assert_engines_agree("wu_ftpd/benign", &m.world(wu_ftpd::benign_world()));

    // NULL-HTTPD: heap chunk-link corruption.
    let m = Machine::from_c(null_httpd::SOURCE).unwrap();
    let attack = m.clone().world(null_httpd::attack_world(m.image()));
    assert_engines_agree("null_httpd/attack", &attack);
    assert_engines_agree("null_httpd/benign", &m.world(null_httpd::benign_world()));

    // GHTTPD: stack overflow corrupting a URL pointer.
    let m = Machine::from_c(ghttpd::SOURCE).unwrap();
    let attack = m.clone().world(ghttpd::attack_world(m.image()));
    assert_engines_agree("ghttpd/attack", &attack);
    assert_engines_agree("ghttpd/benign", &m.world(ghttpd::benign_world()));

    // Traceroute double free, globd tilde expansion, dispatchd GOT-style
    // function-pointer overwrite.
    for (label, source, attack, benign) in [
        (
            "traceroute",
            traceroute::SOURCE,
            traceroute::attack_world(),
            traceroute::benign_world(),
        ),
        (
            "globd",
            globd::SOURCE,
            globd::attack_world(),
            globd::benign_world(),
        ),
        (
            "dispatchd",
            dispatchd::SOURCE,
            dispatchd::attack_world(),
            dispatchd::benign_world(),
        ),
    ] {
        let m = Machine::from_c(source).unwrap();
        assert_engines_agree(&format!("{label}/attack"), &m.clone().world(attack));
        assert_engines_agree(&format!("{label}/benign"), &m.world(benign));
    }
}

#[test]
fn table4_false_negative_scenarios_agree() {
    for (label, source, world) in [
        (
            "int_overflow/attack",
            table4::INT_OVERFLOW_SOURCE,
            table4::int_overflow_attack_world(),
        ),
        (
            "int_overflow/benign",
            table4::INT_OVERFLOW_SOURCE,
            table4::int_overflow_benign_world(),
        ),
        (
            "auth_flag/attack",
            table4::AUTH_FLAG_SOURCE,
            table4::auth_flag_attack_world(),
        ),
        (
            "auth_flag/good",
            table4::AUTH_FLAG_SOURCE,
            table4::auth_flag_good_password_world(),
        ),
        (
            "auth_flag/bad",
            table4::AUTH_FLAG_SOURCE,
            table4::auth_flag_bad_password_world(),
        ),
        (
            "fmt_leak/attack",
            table4::FMT_LEAK_SOURCE,
            table4::fmt_leak_attack_world(),
        ),
        (
            "fmt_leak/benign",
            table4::FMT_LEAK_SOURCE,
            table4::fmt_leak_benign_world(),
        ),
    ] {
        let m = Machine::from_c(source).unwrap().world(world);
        assert_engines_agree(label, &m);
    }
}

#[test]
fn per_pc_profiles_are_engine_invariant() {
    use ptaint::{ToJson, TraceConfig};

    // The profiler hooks `Cpu::exec`, which both engines funnel through —
    // so the full profile (per-PC histogram, call tree, taint heatmap,
    // syscall table) must be byte-identical across engines, not merely
    // equivalent.
    let ghttpd_m = Machine::from_c(ghttpd::SOURCE).unwrap();
    let ghttpd_world = ghttpd::attack_world(ghttpd_m.image());
    for (label, machine) in [
        (
            "exp1/attack",
            Machine::from_c(synthetic::EXP1_SOURCE)
                .unwrap()
                .world(synthetic::exp1_attack_world()),
        ),
        ("ghttpd/attack", ghttpd_m.world(ghttpd_world)),
    ] {
        let cfg = TraceConfig::default();
        let (cached_out, _, _, cached) = machine.clone().engine(Engine::Cached).run_profile(&cfg);
        let (interp_out, _, _, interp) = machine.clone().engine(Engine::Interp).run_profile(&cfg);
        assert_eq!(
            cached.to_json(),
            interp.to_json(),
            "{label}: engine profiles diverged"
        );
        // And the histogram really covered the whole run.
        assert_eq!(cached.steps, cached_out.stats.instructions, "{label}");
        assert_eq!(interp.steps, interp_out.stats.instructions, "{label}");
    }
}

#[test]
fn forked_runs_are_bit_identical_to_fresh_boots_under_both_engines() {
    // A fork resumes from the post-boot snapshot with copy-on-write pages
    // and a rebuilt decode cache, so under either engine it must retrace
    // the fresh boot bit-exactly — decode-cache counters included (both
    // executions start from an identical cold cache).
    let ghttpd_m = Machine::from_c(ghttpd::SOURCE).unwrap();
    let ghttpd_world = ghttpd::attack_world(ghttpd_m.image());
    for (label, machine) in [
        (
            "exp1/attack",
            Machine::from_c(synthetic::EXP1_SOURCE)
                .unwrap()
                .world(synthetic::exp1_attack_world()),
        ),
        (
            "exp2/benign",
            Machine::from_c(synthetic::EXP2_SOURCE)
                .unwrap()
                .world(synthetic::exp2_benign_world()),
        ),
        ("ghttpd/attack", ghttpd_m.world(ghttpd_world)),
    ] {
        for engine in [Engine::Cached, Engine::Interp] {
            let m = machine.clone().engine(engine);
            let fresh = m.run();
            let snap = m.snapshot();
            for trial in 0..2 {
                let forked = snap.run();
                assert_eq!(
                    forked.outcome, fresh,
                    "{label}: forked run #{trial} diverged from the fresh boot ({engine:?})"
                );
            }
        }
    }
}

#[test]
fn workloads_agree_at_small_scale() {
    for w in workloads::all() {
        let m = Machine::from_c(w.source).unwrap().world(w.world(1));
        let out = assert_engines_agree(w.name, &m);
        assert!(
            !out.reason.is_detected(),
            "{}: workload should be alert-free",
            w.name
        );
    }
}
