//! Integration: the guest-level profiler (`ptaint-profile`) end to end —
//! retirement accounting that matches the executed instruction count, the
//! pinned GHTTPD acceptance scenario (the attack's taint activity names the
//! `handle` → `log_request` path), and byte-deterministic profile JSON.

use ptaint::{DetectionPolicy, Machine, ProfileReport, ToJson, TraceConfig};
use ptaint_guest::apps::{ghttpd, synthetic};

fn ghttpd_attack() -> Machine {
    let m = Machine::from_c(ghttpd::SOURCE).unwrap();
    let world = ghttpd::attack_world(m.image());
    m.world(world).policy(DetectionPolicy::PointerTaintedness)
}

fn profile_of(machine: &Machine) -> (u64, ProfileReport) {
    let (outcome, _tail, _trace, profile) = machine.run_profile(&TraceConfig::default());
    (outcome.stats.instructions, profile)
}

#[test]
fn profiler_totals_equal_executed_instructions() {
    // Exceptions (the alert) abort an instruction *before* it retires, so
    // the histogram total must track `ExecStats::instructions` exactly —
    // on a clean exit and on a detected attack alike.
    for (label, machine) in [
        (
            "exp1/attack",
            Machine::from_c(synthetic::EXP1_SOURCE)
                .unwrap()
                .world(synthetic::exp1_attack_world()),
        ),
        ("ghttpd/attack", ghttpd_attack()),
        (
            "ghttpd/benign",
            Machine::from_c(ghttpd::SOURCE)
                .unwrap()
                .world(ghttpd::benign_world()),
        ),
    ] {
        let (instructions, profile) = profile_of(&machine);
        assert_eq!(profile.steps, instructions, "{label}");
        let hist_total: u64 = profile.symbols.iter().map(|s| s.count).sum();
        assert_eq!(hist_total, instructions, "{label}: histogram total");
        let tree_total: u64 = profile.collapsed.iter().map(|(_, n)| n).sum();
        assert_eq!(tree_total, instructions, "{label}: call-tree total");
    }
}

#[test]
fn ghttpd_attack_profile_names_the_handle_log_request_path() {
    let (_, profile) = profile_of(&ghttpd_attack());

    // The vulnerable path is on the collapsed call stacks: main accepts,
    // handle logs the request, log_request runs the unbounded strcpy.
    assert!(
        profile
            .collapsed
            .iter()
            .any(|(path, _)| path.ends_with("main;handle;log_request;strcpy")),
        "collapsed stacks miss the overflow path: {:?}",
        profile.collapsed
    );

    // The taint heatmap names the copy/compare helpers the tainted request
    // flows through — and the alert site itself (the dereference of the
    // corrupted URL pointer) carries the alert count.
    let hot: Vec<&str> = profile
        .taint_symbols
        .iter()
        .map(|s| s.symbol.as_str())
        .collect();
    assert!(hot.contains(&"strcpy"), "taint hotspots: {hot:?}");
    let alerts: u64 = profile.taint_sites.iter().map(|s| s.alerts).sum();
    assert_eq!(alerts, 1, "exactly one alert site");

    // The syscall table covers the server's socket lifecycle up to the
    // detection (close never runs: the alert preempts it).
    let names: Vec<&str> = profile.syscalls.iter().map(|r| r.name.as_str()).collect();
    for expected in ["socket", "bind", "listen", "accept", "recv"] {
        assert!(names.contains(&expected), "syscalls: {names:?}");
    }
}

#[test]
fn profile_json_is_byte_deterministic() {
    let machine = ghttpd_attack();
    let (_, a) = profile_of(&machine);
    let (_, b) = profile_of(&machine);
    assert_eq!(a.to_json(), b.to_json());

    // And stable against an independently built machine (fresh compile of
    // the same source): addresses and counts are all derived, not sampled.
    let (_, c) = profile_of(&ghttpd_attack());
    assert_eq!(a.to_json(), c.to_json());
}
