//! Integration: §5.3 / Table 4 — the engineered false negatives. The
//! architecture must *not* detect these (that is the paper's point), and
//! the damage must really happen.

use ptaint::experiments::table4;
use ptaint::{ExitReason, Machine};
use ptaint_guest::apps::table4 as scenarios;

#[test]
fn table_4_suite_reproduces() {
    let report = table4::run_false_negative_suite();
    assert!(report.all_missed_with_damage(), "{report}");
}

#[test]
fn integer_overflow_index_writes_out_of_bounds_silently() {
    let m = Machine::from_c(scenarios::INT_OVERFLOW_SOURCE).unwrap();
    let out = m.world(scenarios::int_overflow_attack_world()).run();
    assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
    assert!(out.stdout_text().contains("GUARD CORRUPTED"));
}

#[test]
fn auth_flag_overflow_grants_access_silently() {
    let m = Machine::from_c(scenarios::AUTH_FLAG_SOURCE).unwrap();
    let out = m.world(scenarios::auth_flag_attack_world()).run();
    assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
    assert!(out.stdout_text().contains("ACCESS GRANTED"));
}

#[test]
fn format_leak_reads_the_secret_silently() {
    let m = Machine::from_c(scenarios::FMT_LEAK_SOURCE).unwrap();
    let out = m.world(scenarios::fmt_leak_attack_world()).run();
    assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
    assert!(
        out.stdout_text().contains("12345678"),
        "{}",
        out.stdout_text()
    );
}

#[test]
fn but_the_same_leak_program_is_caught_when_percent_n_is_used() {
    // §5.3's contrast: with %n instead of a trailing %x, the same program
    // *is* caught, because the store dereferences a tainted word.
    let m = Machine::from_c(scenarios::FMT_LEAK_SOURCE).unwrap();
    let out = m
        .world(ptaint::WorldConfig::new().stdin(b"abcd%x%x%x%n".to_vec()))
        .run();
    assert!(out.reason.is_detected(), "{:?}", out.reason);
}

#[test]
fn scenario_programs_behave_correctly_on_honest_inputs() {
    let m = Machine::from_c(scenarios::INT_OVERFLOW_SOURCE).unwrap();
    let out = m.world(scenarios::int_overflow_benign_world()).run();
    assert!(out.stdout_text().contains("safely"));

    let m = Machine::from_c(scenarios::AUTH_FLAG_SOURCE).unwrap();
    let ok = m
        .clone()
        .world(scenarios::auth_flag_good_password_world())
        .run();
    assert!(ok.stdout_text().contains("ACCESS GRANTED"));
    let denied = m.world(scenarios::auth_flag_bad_password_world()).run();
    assert!(denied.stdout_text().contains("access denied"));
}
