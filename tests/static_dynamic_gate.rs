//! Integration: the static↔dynamic differential gate.
//!
//! The static analyzer's findings and the dynamic detector's alerts are
//! two views of the same property, and this gate keeps them honest
//! against each other: every `Alert` the dynamic detector raises across
//! the attack suite (the real-world daemons and the paper's synthetic
//! experiments) must land on a site the static lint *flags* — a miss
//! would mean the precision work taught the analyzer to talk itself out
//! of a dereference that demonstrably goes tainted at runtime. The dual
//! claim — an alert site must never be in the ProvenClean set — is the
//! soundness half that `tests/elision_diff.rs` exercises end-to-end;
//! asserting it here too localizes the failure to the analysis instead
//! of a run-wide mismatch.

use ptaint::Machine;
use ptaint_guest::apps::{
    calibrate_format_pad, dispatchd, ghttpd, globd, null_httpd, synthetic, traceroute, wu_ftpd,
};

/// Runs the attack, requires a dynamic alert, and requires the static
/// analysis to flag the alert's site (and to have never proven it clean).
fn assert_alert_is_statically_flagged(label: &str, machine: &Machine) {
    let out = machine.clone().run();
    let alert = out
        .reason
        .alert()
        .copied()
        .unwrap_or_else(|| panic!("{label}: attack did not alert ({:?})", out.reason));
    let analysis = ptaint::analyze(machine.image());
    assert!(
        !analysis.proven.contains(&alert.pc),
        "{label}: dynamic alert site {:08x} ({}) was statically proven clean",
        alert.pc,
        alert.instr
    );
    assert!(
        analysis.findings.iter().any(|f| f.pc == alert.pc),
        "{label}: dynamic alert site {:08x} ({}) is not statically flagged",
        alert.pc,
        alert.instr
    );
}

#[test]
fn synthetic_attack_alerts_are_statically_flagged() {
    let m = Machine::from_c(synthetic::EXP1_SOURCE)
        .unwrap()
        .world(synthetic::exp1_attack_world());
    assert_alert_is_statically_flagged("exp1", &m);

    let m = Machine::from_c(synthetic::EXP2_SOURCE)
        .unwrap()
        .world(synthetic::exp2_attack_world());
    assert_alert_is_statically_flagged("exp2", &m);

    // Exp3 probes format pads like an attacker until one lands.
    let m = Machine::from_c(synthetic::EXP3_SOURCE).unwrap();
    let pad = (0..16)
        .find(|&pad| {
            let out = m.clone().world(synthetic::exp3_attack_world(pad)).run();
            out.reason.alert().is_some_and(|a| a.pointer == 0x6463_6261)
        })
        .expect("some pad reaches the buffer");
    let m = m.world(synthetic::exp3_attack_world(pad));
    assert_alert_is_statically_flagged("exp3", &m);
}

#[test]
fn real_world_attack_alerts_are_statically_flagged() {
    let m = Machine::from_c(wu_ftpd::SOURCE).unwrap();
    let target = wu_ftpd::uid_address(m.image());
    let pad = calibrate_format_pad(
        m.image(),
        |p| wu_ftpd::attack_world(m.image(), p),
        target,
        48,
    )
    .expect("calibrates");
    let attack = wu_ftpd::attack_world(m.image(), pad);
    assert_alert_is_statically_flagged("wu_ftpd", &m.clone().world(attack));

    let m = Machine::from_c(null_httpd::SOURCE).unwrap();
    let attack = null_httpd::attack_world(m.image());
    assert_alert_is_statically_flagged("null_httpd", &m.clone().world(attack));

    let m = Machine::from_c(ghttpd::SOURCE).unwrap();
    let attack = ghttpd::attack_world(m.image());
    assert_alert_is_statically_flagged("ghttpd", &m.clone().world(attack));

    for (label, source, world) in [
        ("traceroute", traceroute::SOURCE, traceroute::attack_world()),
        ("globd", globd::SOURCE, globd::attack_world()),
        ("dispatchd", dispatchd::SOURCE, dispatchd::attack_world()),
    ] {
        let m = Machine::from_c(source).unwrap().world(world);
        assert_alert_is_statically_flagged(label, &m);
    }
}
