//! Pins the JSONL trace schema: the exact rendering of every event variant
//! (against the golden file `tests/golden/trace_events.jsonl`) and the
//! shape of a real run's event stream.

use ptaint::{
    AlertKind, DetectionPolicy, ExitReason, HierarchyConfig, Machine, TraceConfig, WorldConfig,
};
use ptaint_isa::{Instr, MemWidth, Reg};
use ptaint_trace::{Event, JsonlSink, Loc, MetricsCollector, ToJson, Transfer};

/// One hand-built event of every variant, in a fixed order.
fn one_of_each() -> Vec<Event> {
    let probe = Instr::Load {
        width: MemWidth::Word,
        signed: true,
        rt: Reg::new(9),
        base: Reg::new(8),
        offset: 0,
    };
    vec![
        Event::TaintSource {
            kind: "syscall",
            label: "recv#1 fd=4".to_string(),
            base: 0x1000_0000,
            len: 4,
        },
        Event::TaintPropagate(Transfer {
            pc: 0x40_0100,
            instr: Instr::Load {
                width: MemWidth::Word,
                signed: true,
                rt: Reg::new(8),
                base: Reg::new(4),
                offset: 0,
            },
            rule: "load",
            dst: Loc::Reg(Reg::new(8)),
            srcs: [Some(Loc::Mem(0x1000_0000)), None],
            taint_bits: 0b1111,
        }),
        Event::PointerCheck {
            pc: 0x40_0104,
            instr: probe,
            reg: Reg::new(8),
            value: 0x6161_6161,
            taint_bits: 0b1111,
            flagged: true,
        },
        Event::Alert {
            pc: 0x40_0104,
            instr: probe,
            kind: AlertKind::DataPointer.name(),
            policy: DetectionPolicy::PointerTaintedness.name(),
            reg: Reg::new(8),
            value: 0x6161_6161,
            taint_bits: 0b1111,
        },
        Event::Syscall {
            pc: 0x40_0010,
            number: 46,
            name: "recv",
            result: 4,
        },
        Event::Retire {
            pc: 0x40_0104,
            instr: probe,
            tainted: true,
        },
        Event::CacheAccess {
            level: 1,
            addr: 0x1000_0000,
            hit: false,
        },
        Event::DecodeCache {
            page: 0x400,
            kind: "invalidate",
        },
        Event::StaticAnalysis {
            functions: 26,
            blocks: 405,
            proven: 1074,
            flagged: 0,
            cached: false,
        },
        Event::CheckElided { pc: 0x40_0108 },
        Event::FaultInjected {
            kind: "taint_clear",
            detail: "taint cleared on [0x10000000, +256)".to_string(),
        },
        Event::Snapshot { pages: 42 },
        Event::Fork {
            pages_shared: 40,
            cow_faults: 3,
        },
        Event::DegradedMode {
            reason: "proven bitmap replica mismatch on page 0x00400000".to_string(),
        },
        Event::ReplayDivergence {
            index: 7,
            expected: "syscall 4003 (0x0, 0x10000000, 0x40)".to_string(),
            actual: "syscall 4001 (0x7, 0x0, 0x0)".to_string(),
        },
    ]
}

#[test]
fn golden_file_pins_every_event_rendering() {
    let mut sink = JsonlSink::new();
    let mut metrics = MetricsCollector::new();
    for event in one_of_each() {
        sink.record(&event);
        metrics.record(&event);
    }
    // The periodic `metrics_snapshot` row is not an `Event` variant — it is
    // a raw record interleaved into the same stream (sharing its dense seq
    // space) by the hub's `--metrics-interval` support. Pin it the same way.
    sink.record_fields(&format!(
        "\"event\":\"metrics_snapshot\",\"retired\":1,\"metrics\":{}",
        metrics.peek().to_json()
    ));
    let got = String::from_utf8(sink.into_bytes()).unwrap();
    // `BLESS=1 cargo test --test trace_schema` regenerates the golden file
    // after an intentional schema change (review the diff before commit).
    if std::env::var_os("BLESS").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/trace_events.jsonl"
        );
        std::fs::write(path, &got).expect("writes golden");
        return;
    }
    let golden = include_str!("golden/trace_events.jsonl");
    assert_eq!(got, golden, "JSONL schema drifted from the golden file");
}

/// Pulls the top-level keys of one flat JSONL object, in order. Handles the
/// value shapes the trace emits: numbers, booleans, strings, and arrays of
/// strings — without a JSON dependency.
fn keys_of(line: &str) -> Vec<String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|l| l.strip_suffix('}'))
        .unwrap_or_else(|| panic!("not an object: {line}"));
    let mut keys = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        // Key.
        assert_eq!(chars.next(), Some('"'), "expected key in {line}");
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '"' {
                break;
            }
            key.push(c);
        }
        keys.push(key);
        assert_eq!(chars.next(), Some(':'), "expected `:` in {line}");
        // Value: skip until a top-level comma.
        let mut in_string = false;
        let mut escaped = false;
        let mut depth = 0u32;
        let mut done = true;
        while let Some(c) = chars.next() {
            if in_string {
                match c {
                    _ if escaped => escaped = false,
                    '\\' => escaped = true,
                    '"' => in_string = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '[' | '{' => depth += 1,
                ']' | '}' => depth -= 1,
                ',' if depth == 0 => {
                    done = chars.peek().is_none();
                    break;
                }
                _ => {}
            }
        }
        if done {
            break;
        }
    }
    keys
}

/// The pinned field order for each event discriminant (after `"seq"`).
fn pinned_keys(event: &str) -> &'static [&'static str] {
    match event {
        "retire" => &["event", "pc", "instr", "tainted"],
        "taint_source" => &["event", "kind", "label", "base", "len"],
        "taint_propagate" => &["event", "pc", "instr", "rule", "dst", "srcs", "taint"],
        "pointer_check" => &["event", "pc", "instr", "reg", "value", "taint", "flagged"],
        "alert" => &[
            "event", "pc", "instr", "kind", "policy", "reg", "value", "taint",
        ],
        "syscall" => &["event", "pc", "number", "name", "result"],
        "cache_access" => &["event", "level", "addr", "hit"],
        "decode_cache" => &["event", "page", "kind"],
        "static_analysis" => &[
            "event",
            "functions",
            "blocks",
            "proven",
            "flagged",
            "cached",
        ],
        "check_elided" => &["event", "pc"],
        "fault_injected" => &["event", "kind", "detail"],
        "snapshot" => &["event", "pages"],
        "fork" => &["event", "pages_shared", "cow_faults"],
        "degraded_mode" => &["event", "reason"],
        "replay_divergence" => &["event", "index", "expected", "actual"],
        "metrics_snapshot" => &["event", "retired", "metrics"],
        other => panic!("unknown event discriminant `{other}`"),
    }
}

#[test]
fn real_run_stream_matches_the_pinned_schema() {
    let machine = Machine::from_c(
        r#"
        void vulnerable() {
            char buf[10];
            scanf("%s", buf);
        }
        int main() { vulnerable(); return 0; }
        "#,
    )
    .unwrap()
    .world(WorldConfig::new().stdin(vec![b'a'; 24]))
    .policy(DetectionPolicy::PointerTaintedness)
    .hierarchy(HierarchyConfig::two_level());

    let (outcome, _tail, report) = machine.run_with_trace(&TraceConfig::all());
    assert!(
        matches!(outcome.reason, ExitReason::Security(_)),
        "{:?}",
        outcome.reason
    );

    let jsonl = String::from_utf8(report.jsonl.expect("jsonl enabled")).unwrap();
    let mut counts = std::collections::BTreeMap::new();
    for (i, line) in jsonl.lines().enumerate() {
        let keys = keys_of(line);
        assert_eq!(keys[0], "seq", "line {i}: {line}");
        // Sequence numbers are dense and start at zero.
        assert!(
            line.starts_with(&format!("{{\"seq\":{i},")),
            "line {i}: {line}"
        );
        let event = keys[1..]
            .first()
            .map(String::as_str)
            .expect("event discriminant");
        assert_eq!(event, "event", "line {i}: {line}");
        let name_start = line.find("\"event\":\"").unwrap() + "\"event\":\"".len();
        let name = &line[name_start..name_start + line[name_start..].find('"').unwrap()];
        assert_eq!(&keys[1..], pinned_keys(name), "line {i}: {line}");
        *counts.entry(name.to_string()).or_insert(0u64) += 1;
    }

    // The attack exercises every variant of the vocabulary.
    for expected in [
        "retire",
        "taint_source",
        "taint_propagate",
        "pointer_check",
        "alert",
        "syscall",
        "cache_access",
        "decode_cache",
    ] {
        assert!(counts.contains_key(expected), "no `{expected}` in stream");
    }

    // The metrics snapshot is consistent with the stream it was fed.
    let metrics = report.metrics.expect("metrics enabled");
    assert_eq!(metrics.retired, counts["retire"]);
    assert_eq!(metrics.taint_sources, counts["taint_source"]);
    assert_eq!(metrics.propagations, counts["taint_propagate"]);
    assert_eq!(metrics.pointer_checks, counts["pointer_check"]);
    assert_eq!(metrics.alerts, counts["alert"]);
    assert_eq!(metrics.alerts, 1);
}

#[test]
fn metrics_interval_interleaves_pinned_snapshot_records() {
    const INTERVAL: u64 = 50;
    let machine = Machine::from_c(
        r#"
        void vulnerable() {
            char buf[10];
            scanf("%s", buf);
        }
        int main() { vulnerable(); return 0; }
        "#,
    )
    .unwrap()
    .world(WorldConfig::new().stdin(vec![b'a'; 24]))
    .policy(DetectionPolicy::PointerTaintedness);

    let cfg = TraceConfig {
        jsonl: true,
        metrics_interval: Some(INTERVAL),
        ..TraceConfig::default()
    };
    let (outcome, _tail, report) = machine.run_with_trace(&cfg);
    assert!(matches!(outcome.reason, ExitReason::Security(_)));

    let jsonl = String::from_utf8(report.jsonl.expect("jsonl forced on")).unwrap();
    let mut snapshots = Vec::new();
    for (i, line) in jsonl.lines().enumerate() {
        // Snapshot rows share the stream's dense seq space.
        assert!(
            line.starts_with(&format!("{{\"seq\":{i},")),
            "line {i}: {line}"
        );
        if !line.contains("\"event\":\"metrics_snapshot\"") {
            continue;
        }
        let keys = keys_of(line);
        assert_eq!(&keys[1..], pinned_keys("metrics_snapshot"), "{line}");
        let at = line.find("\"retired\":").unwrap() + "\"retired\":".len();
        let digits: String = line[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        snapshots.push(digits.parse::<u64>().unwrap());
    }

    // One snapshot per full interval, at exact multiples of it.
    let retired = report.metrics.expect("metrics forced on").retired;
    assert_eq!(snapshots.len() as u64, retired / INTERVAL);
    assert!(!snapshots.is_empty(), "run too short to snapshot");
    for (i, &at) in snapshots.iter().enumerate() {
        assert_eq!(at, (i as u64 + 1) * INTERVAL);
    }
}
