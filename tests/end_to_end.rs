//! Integration: cross-cutting end-to-end properties of the whole stack —
//! compiler → assembler → loader → taint-tracking CPU → virtual OS.

use ptaint::{
    AlertKind, DetectionPolicy, ExitReason, HierarchyConfig, Machine, NetSession, WorldConfig,
};

#[test]
fn taint_flows_from_every_input_source_to_detection() {
    // stdin, file, socket, argv, env — all five §4.4 taint sources.
    let deref_stdin = r#"
        int main() {
            int p;
            read(0, (char*)&p, 4);
            return *(int*)p;
        }"#;
    let out = Machine::from_c(deref_stdin)
        .unwrap()
        .world(WorldConfig::new().stdin(b"\x00\x10\x00\x10".to_vec()))
        .run();
    assert!(out.reason.is_detected(), "stdin: {:?}", out.reason);

    let deref_file = r#"
        int main() {
            int p;
            int fd = open("/data", 0);
            read(fd, (char*)&p, 4);
            return *(int*)p;
        }"#;
    let out = Machine::from_c(deref_file)
        .unwrap()
        .world(WorldConfig::new().file("/data", b"\x00\x10\x00\x10".to_vec()))
        .run();
    assert!(out.reason.is_detected(), "file: {:?}", out.reason);

    let deref_socket = r#"
        int main() {
            int p;
            int s = socket();
            int c;
            bind(s, 9); listen(s);
            c = accept(s);
            recv(c, (char*)&p, 4, 0);
            return *(int*)p;
        }"#;
    let out = Machine::from_c(deref_socket)
        .unwrap()
        .world(WorldConfig::new().session(NetSession::new(vec![b"\x00\x10\x00\x10".to_vec()])))
        .run();
    assert!(out.reason.is_detected(), "socket: {:?}", out.reason);

    let deref_argv = r#"
        int main(int argc, char **argv) {
            int p = *(int*)argv[1];
            return *(int*)p;
        }"#;
    let out = Machine::from_c(deref_argv)
        .unwrap()
        .world(WorldConfig::new().args(["prog", "AAAA"]))
        .run();
    assert!(out.reason.is_detected(), "argv: {:?}", out.reason);

    let deref_env = r#"
        int main(int argc, char **argv) {
            /* envp is the third crt0 argument; fetch it from the stack. */
            char **envp = (char**)*((int*)&argv + 1);
            int p = *(int*)envp[0];
            return *(int*)p;
        }"#;
    let out = Machine::from_c(deref_env)
        .unwrap()
        .world(WorldConfig::new().args(["prog"]).env("AAAA"))
        .run();
    assert!(out.reason.is_detected(), "env: {:?}", out.reason);
}

#[test]
fn function_pointer_overwrite_is_caught_as_a_jump_alert() {
    // A control-data variant beyond the paper's exp1: smashing a function
    // pointer. Detected by both PTD and the control-only baseline.
    let source = r#"
        int greet() { printf("hi\n"); return 0; }
        int main() {
            int (*handler)();
            char buf[16];
            handler = greet;
            gets(buf);              /* overflow reaches handler */
            return handler();
        }"#;
    let mut input = vec![b'x'; 16];
    input.extend_from_slice(b"BBBB\n");
    for policy in [
        DetectionPolicy::PointerTaintedness,
        DetectionPolicy::ControlOnly,
    ] {
        let out = Machine::from_c(source)
            .unwrap()
            .world(WorldConfig::new().stdin(input.clone()))
            .policy(policy)
            .run();
        let alert = out
            .reason
            .alert()
            .unwrap_or_else(|| panic!("{policy}: {:?}", out.reason));
        assert_eq!(alert.kind, AlertKind::JumpPointer, "{policy}");
        assert_eq!(alert.pointer, 0x4242_4242, "{policy}");
    }
}

#[test]
fn partial_pointer_corruption_still_detected() {
    // Overwriting a single byte of a stored pointer taints one byte of the
    // word; the OR-gate detector still fires.
    let source = r#"
        int target;
        int main() {
            int *p = &target;
            read(0, (char*)&p, 1);     /* taint only the low byte */
            *p = 7;
            return 0;
        }"#;
    let out = Machine::from_c(source)
        .unwrap()
        .world(WorldConfig::new().stdin(b"\x00".to_vec()))
        .run();
    let alert = out.reason.alert().expect("one tainted byte suffices");
    assert_eq!(alert.taint.count(), 1);
}

#[test]
fn untainting_via_validation_allows_the_dereference() {
    // checked_index models validated input (§4.2): after range validation
    // the value may be used in address arithmetic.
    let source = r#"
        int table[16];
        int main() {
            char buf[8];
            int i;
            scanf("%s", buf);
            i = checked_index(buf[0] - 'a', 0, 15);
            table[i] = 1;
            printf("ok %d", i);
            return 0;
        }"#;
    let out = Machine::from_c(source)
        .unwrap()
        .world(WorldConfig::new().stdin(b"f".to_vec()))
        .run();
    assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
    assert_eq!(out.stdout_text(), "ok 5");
}

#[test]
fn pipelined_and_functional_execution_agree_on_attacks() {
    use ptaint_guest::apps::synthetic;
    let m = Machine::from_c(synthetic::EXP1_SOURCE)
        .unwrap()
        .world(synthetic::exp1_attack_world());
    let plain = m.run();
    let (piped, report) = m.run_pipelined();
    assert_eq!(plain.reason, piped.reason);
    let detection = report.detection.expect("pipeline records the detection");
    assert_eq!(
        detection.alert,
        *plain.reason.alert().expect("functional alert")
    );
}

#[test]
fn cache_statistics_accumulate_during_real_runs() {
    let m = Machine::from_c(
        r#"int main() {
            int i; int s = 0;
            int a[512];
            for (i = 0; i < 512; i++) a[i] = i;
            for (i = 0; i < 512; i++) s += a[i];
            return s & 0xff;
        }"#,
    )
    .unwrap()
    .hierarchy(HierarchyConfig::two_level());
    // Run manually to inspect the memory system afterwards.
    let (mut cpu, mut os) = ptaint::load(
        m.image(),
        WorldConfig::new(),
        DetectionPolicy::PointerTaintedness,
        HierarchyConfig::two_level(),
    );
    let out = ptaint::run_to_exit(&mut cpu, &mut os, 10_000_000);
    assert!(matches!(out.reason, ExitReason::Exited(_)));
    let l1 = cpu.mem().l1_stats().unwrap();
    assert!(l1.hits > 1000, "{l1:?}");
    assert!(l1.hit_rate() > 0.5, "{l1:?}");
}

#[test]
fn recursive_programs_with_io_run_deeply() {
    let out = Machine::from_c(
        r#"
        int depth(int n) {
            char pad[24];
            pad[0] = n;
            if (n == 0) return pad[0];
            return depth(n - 1) + 1;
        }
        int main() { printf("%d", depth(300)); return 0; }
        "#,
    )
    .unwrap()
    .run();
    assert_eq!(out.stdout_text(), "300");
}

#[test]
fn disassembly_of_built_images_is_renderable() {
    let m = Machine::from_c("int main() { return 0; }").unwrap();
    let text = ptaint::disassemble(m.image());
    assert!(text.contains("<main>:"));
    assert!(text.contains("jr $31"));
    assert!(text.lines().count() > 50);
}
