//! Integration: §5.2 / Table 3 — the false-positive experiment. No benign
//! execution may ever raise an alert, however much tainted data it chews
//! through.

use ptaint::experiments::table3;
use ptaint::{DetectionPolicy, ExitReason, Machine, WorldConfig};
use ptaint_guest::workloads;

#[test]
fn table_3_reports_zero_alerts() {
    let report = table3::run_false_positive_suite(4);
    assert_eq!(report.total_alerts(), 0, "{report}");
    assert_eq!(report.rows.len(), 6);
    for row in &report.rows {
        assert!(row.instructions > 10_000, "{} ran too little", row.name);
        assert!(row.input_bytes > 0, "{} consumed no input", row.name);
    }
}

#[test]
fn workloads_stay_clean_at_a_larger_scale() {
    // A second scale point: more input, more instructions, still no alerts.
    for w in workloads::all() {
        let out = Machine::from_c(w.source).unwrap().world(w.world(8)).run();
        assert_eq!(
            out.reason,
            ExitReason::Exited(0),
            "{}: {:?}",
            w.name,
            out.reason
        );
    }
}

#[test]
fn workloads_stay_clean_behind_the_cache_hierarchy() {
    for w in workloads::all().into_iter().take(3) {
        let out = Machine::from_c(w.source)
            .unwrap()
            .world(w.world(2))
            .hierarchy(ptaint::HierarchyConfig::two_level())
            .run();
        assert_eq!(
            out.reason,
            ExitReason::Exited(0),
            "{}: {:?}",
            w.name,
            out.reason
        );
    }
}

#[test]
fn heavy_tainted_string_processing_raises_no_alert() {
    // A worst-case benign program: every byte it touches is tainted, it
    // copies, compares, formats, allocates and frees — and never
    // dereferences a tainted word.
    let out = Machine::from_c(
        r#"
        int main() {
            char line[256];
            char *copy;
            char out[300];
            int total = 0;
            while (scanf("%s", line) > 0) {
                copy = malloc(strlen(line) + 1);
                strcpy(copy, line);
                if (strcmp(copy, "quit") == 0) break;
                if (strstr(copy, "abc")) total++;
                snprintf(out, 300, "<%s:%d>", copy, total);
                printf("%s", out);
                free(copy);
            }
            printf("|total=%d", total);
            return 0;
        }
        "#,
    )
    .unwrap()
    .world(WorldConfig::new().stdin(b"xabc yyy zabcz quit".to_vec()))
    .run();
    assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
    assert_eq!(out.stdout_text(), "<xabc:1><yyy:1><zabcz:2>|total=2");
}

#[test]
fn benign_percent_n_through_a_program_pointer_is_fine() {
    // %n itself is not the problem — dereferencing *tainted* pointers is.
    let out = Machine::from_c(
        r#"
        int main() {
            int n = 0;
            char buf[64];
            scanf("%s", buf);
            printf("%s%n", buf, &n);
            printf("|%d", n);
            return 0;
        }
        "#,
    )
    .unwrap()
    .world(WorldConfig::new().stdin(b"hello".to_vec()))
    .run();
    assert_eq!(out.reason, ExitReason::Exited(0));
    assert_eq!(out.stdout_text(), "hello|5");
}

#[test]
fn policy_has_no_effect_on_benign_behaviour() {
    let w = &workloads::all()[0];
    let m = Machine::from_c(w.source).unwrap().world(w.world(2));
    let full = m.clone().policy(DetectionPolicy::PointerTaintedness).run();
    let ctrl = m.clone().policy(DetectionPolicy::ControlOnly).run();
    let off = m.policy(DetectionPolicy::Off).run();
    assert_eq!(full.stdout, ctrl.stdout);
    assert_eq!(full.stdout, off.stdout);
    assert_eq!(full.stats.instructions, off.stats.instructions);
}
