//! Property tests for the provenance layer: whenever the detector raises
//! an alert, the forensic chain must be non-empty and rooted at a labeled
//! taint source — across attack variations, environmental noise, and
//! propagation-ring depths.

use proptest::prelude::*;
use ptaint::{DetectionPolicy, ExitReason, Machine, TraceConfig, WorldConfig};
use ptaint_guest::apps::synthetic;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every detected attack yields a forensic chain with at least one
    /// propagation step, a resolved root source, and the same flagged
    /// pointer the security exception reported — regardless of overflow
    /// length, payload byte, load-time noise, and ring depth.
    #[test]
    fn every_alert_carries_a_rooted_chain(
        len in 11usize..30,
        fill in 0u8..26,
        envs in proptest::collection::vec("[A-Z]{1,6}=[a-z0-9]{0,8}", 0..4),
        depth_shift in 6u32..13,
    ) {
        let payload = vec![b'a' + fill; len];
        let mut world = WorldConfig::new().stdin(payload);
        for e in &envs {
            world = world.env(e);
        }
        let machine = Machine::from_c(synthetic::EXP1_SOURCE)
            .unwrap()
            .world(world)
            .policy(DetectionPolicy::PointerTaintedness);

        let cfg = TraceConfig { ring_depth: 1 << depth_shift, ..TraceConfig::all() };
        let (outcome, _tail, report) = machine.run_with_trace(&cfg);

        let alert = outcome.reason.alert().expect("attack detected");
        let chain = report.forensic.expect("provenance chain built");

        // Non-empty: taint visibly moved before the dereference.
        prop_assert!(!chain.steps.is_empty());
        // Rooted: the origin maps resolved a labeled source even when the
        // chain's early steps fell off the bounded ring.
        let source = chain.source.as_ref().expect("chain rooted at a source");
        prop_assert!(!source.label.is_empty());
        prop_assert!(["syscall", "argv", "env"].contains(&source.kind));
        prop_assert!(source.len > 0);
        // The chain describes the alert the machine actually raised.
        prop_assert_eq!(chain.alert_pc, alert.pc);
        prop_assert_eq!(chain.pointer_reg, alert.pointer_reg);
        prop_assert_eq!(chain.pointer, alert.pointer);
        prop_assert!(chain.taint_bits != 0);
    }

    /// Stream-level statement of the same property: in the JSONL event
    /// stream, every `alert` line is preceded by a `taint_source` line
    /// (taint cannot alert before it entered), and alert lines appear
    /// exactly when the run was stopped by the detector.
    #[test]
    fn alert_events_follow_a_taint_source_in_the_stream(len in 1usize..30) {
        let machine = Machine::from_c(synthetic::EXP1_SOURCE)
            .unwrap()
            .world(WorldConfig::new().stdin(vec![b'a'; len]))
            .policy(DetectionPolicy::PointerTaintedness);
        let (outcome, _tail, report) = machine.run_with_trace(&TraceConfig::all());
        let jsonl = String::from_utf8(report.jsonl.expect("jsonl enabled")).unwrap();

        let mut first_source = None;
        let mut alert_lines = 0usize;
        for (i, line) in jsonl.lines().enumerate() {
            if line.contains("\"event\":\"taint_source\"") && first_source.is_none() {
                first_source = Some(i);
            }
            if line.contains("\"event\":\"alert\"") {
                alert_lines += 1;
                let src = first_source.expect("a taint_source precedes the alert");
                prop_assert!(src < i);
            }
        }
        let detected = matches!(outcome.reason, ExitReason::Security(_));
        prop_assert_eq!(alert_lines, usize::from(detected));
    }
}
