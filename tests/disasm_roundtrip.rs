//! Integration: the disassembler and assembler agree with each other.
//!
//! Every guest program in the repository is compiled to an image, decoded
//! instruction by instruction, printed back as assembly source, and fed
//! through the assembler again — the rebuilt image must be bit-identical
//! (text words, data bytes, entry point). The only rewriting allowed is
//! the branch-target notation: `Instr` displays PC-relative word offsets,
//! while the assembler takes target addresses, so relative offsets are
//! converted to absolute addresses before re-assembly.

use ptaint_asm::{assemble, Image};
use ptaint_guest::apps::{
    dispatchd, ghttpd, globd, null_httpd, synthetic, table4, traceroute, wu_ftpd,
};
use ptaint_guest::workloads;
use ptaint_isa::Instr;

/// Renders `image` as assembly the assembler accepts, preserving layout.
fn to_source(image: &Image) -> String {
    let mut out = String::new();
    for (i, &word) in image.text.iter().enumerate() {
        let addr = image.text_base + 4 * i as u32;
        if addr == image.entry {
            out.push_str("_start:\n");
        }
        let insn = Instr::decode(word)
            .unwrap_or_else(|e| panic!("undecodable text word {word:#010x} at {addr:#x}: {e}"));
        // Branches display relative word offsets; rewrite them as the
        // absolute byte address the assembler expects.
        let line = match insn {
            Instr::Branch {
                cond,
                rs,
                rt,
                offset,
            } => {
                let target = addr
                    .wrapping_add(4)
                    .wrapping_add((i32::from(offset) * 4) as u32);
                let mnem = match cond {
                    ptaint_isa::BranchCond::Eq => "beq",
                    ptaint_isa::BranchCond::Ne => "bne",
                };
                format!("{mnem} {rs},{rt},{target:#x}")
            }
            Instr::BranchZ { cond, rs, offset } => {
                let target = addr
                    .wrapping_add(4)
                    .wrapping_add((i32::from(offset) * 4) as u32);
                format!("{} {rs},{target:#x}", cond.mnemonic())
            }
            other => other.to_string(),
        };
        out.push_str("    ");
        out.push_str(&line);
        out.push('\n');
    }
    if !image.data.is_empty() {
        out.push_str(".data\n");
        for chunk in image.data.chunks(16) {
            let bytes: Vec<String> = chunk.iter().map(u8::to_string).collect();
            out.push_str("    .byte ");
            out.push_str(&bytes.join(", "));
            out.push('\n');
        }
    }
    out
}

/// Disassemble + re-assemble `image` and assert the result is identical.
fn assert_round_trips(label: &str, image: &Image) {
    let source = to_source(image);
    let rebuilt =
        assemble(&source).unwrap_or_else(|e| panic!("{label}: re-assembly failed: {e}\n{source}"));
    assert_eq!(rebuilt.text, image.text, "{label}: text words differ");
    assert_eq!(rebuilt.data, image.data, "{label}: data bytes differ");
    assert_eq!(rebuilt.entry, image.entry, "{label}: entry differs");
}

#[test]
fn every_guest_app_round_trips_through_the_disassembler() {
    for (label, source) in [
        ("exp1", synthetic::EXP1_SOURCE),
        ("exp2", synthetic::EXP2_SOURCE),
        ("exp3", synthetic::EXP3_SOURCE),
        ("wu_ftpd", wu_ftpd::SOURCE),
        ("null_httpd", null_httpd::SOURCE),
        ("ghttpd", ghttpd::SOURCE),
        ("traceroute", traceroute::SOURCE),
        ("globd", globd::SOURCE),
        ("dispatchd", dispatchd::SOURCE),
        ("int_overflow", table4::INT_OVERFLOW_SOURCE),
        ("auth_flag", table4::AUTH_FLAG_SOURCE),
        ("fmt_leak", table4::FMT_LEAK_SOURCE),
    ] {
        let image = ptaint_guest::build(source).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_round_trips(label, &image);
    }
}

#[test]
fn every_workload_round_trips_through_the_disassembler() {
    for w in workloads::all() {
        let image = ptaint_guest::build(w.source).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_round_trips(w.name, &image);
    }
}

/// The raw `disassemble` text itself (addresses, labels, `.word` fallback)
/// is pinned elsewhere; here we only check it stays in sync with the image
/// the source round-trip was generated from.
#[test]
fn disassembly_listing_matches_decoded_instructions() {
    let image = ptaint_guest::build("int main() { return 42; }").unwrap();
    let listing = ptaint_asm::disassemble(&image);
    assert_eq!(listing.lines().count(), image.text.len());
    for (line, &word) in listing.lines().zip(&image.text) {
        let insn = Instr::decode(word).unwrap();
        assert!(
            line.ends_with(&insn.to_string()),
            "listing line `{line}` does not render `{insn}`"
        );
    }
}
