//! Integration: statically-proven check elision is a pure performance
//! transformation. For every guest program in the repository — attack and
//! benign inputs alike — running with `--elide-checks` must produce
//! bit-identical architectural results to the full-checking machine: same
//! exit reason, same alert, same stdout/stderr/transcripts, same retired
//! statistics. [`Machine::run_elision_differential`] performs the paired
//! run and the equality assertion (normalizing only the decode-cache and
//! elision counters); the scenarios here add the two claims the equality
//! alone cannot make — benign runs really do elide work, and attacks are
//! still detected.

use ptaint::{Machine, RunOutcome};
use ptaint_guest::apps::{
    calibrate_format_pad, dispatchd, ghttpd, globd, null_httpd, synthetic, table4, traceroute,
    wu_ftpd,
};
use ptaint_guest::workloads;

/// Runs the elision differential and asserts the elided machine actually
/// skipped some checks (the analysis proved something reachable).
fn assert_elides(label: &str, machine: &Machine) -> RunOutcome {
    let out = machine.run_elision_differential();
    assert!(
        out.stats.elided_checks > 0,
        "{label}: no checks were elided (statically proven sites never hit)"
    );
    out
}

#[test]
fn synthetic_attacks_still_alert_and_benign_runs_elide() {
    for (label, source, world, expect_alert) in [
        (
            "exp1/attack",
            synthetic::EXP1_SOURCE,
            synthetic::exp1_attack_world(),
            true,
        ),
        (
            "exp1/benign",
            synthetic::EXP1_SOURCE,
            synthetic::exp1_benign_world(),
            false,
        ),
        (
            "exp2/attack",
            synthetic::EXP2_SOURCE,
            synthetic::exp2_attack_world(),
            true,
        ),
        (
            "exp2/benign",
            synthetic::EXP2_SOURCE,
            synthetic::exp2_benign_world(),
            false,
        ),
        (
            "exp3/benign",
            synthetic::EXP3_SOURCE,
            synthetic::exp3_benign_world(),
            false,
        ),
    ] {
        let m = Machine::from_c(source).unwrap().world(world);
        let out = assert_elides(label, &m);
        assert_eq!(
            out.reason.is_detected(),
            expect_alert,
            "{label}: wrong detection verdict under elision"
        );
    }
}

#[test]
fn real_world_attacks_still_alert_under_elision() {
    // WU-FTPD: format string overwriting the uid word (Table 2).
    let m = Machine::from_c(wu_ftpd::SOURCE).unwrap();
    let target = wu_ftpd::uid_address(m.image());
    let pad = calibrate_format_pad(
        m.image(),
        |p| wu_ftpd::attack_world(m.image(), p),
        target,
        48,
    )
    .expect("calibrates");
    let attack = m.clone().world(wu_ftpd::attack_world(m.image(), pad));
    let out = assert_elides("wu_ftpd/attack", &attack);
    assert_eq!(out.reason.alert().expect("detected").pointer, target);
    let out = assert_elides("wu_ftpd/benign", &m.world(wu_ftpd::benign_world()));
    assert!(!out.reason.is_detected());

    // NULL-HTTPD heap corruption and GHTTPD stack overflow.
    let m = Machine::from_c(null_httpd::SOURCE).unwrap();
    let attack = m.clone().world(null_httpd::attack_world(m.image()));
    assert!(assert_elides("null_httpd/attack", &attack)
        .reason
        .is_detected());
    let benign = m.world(null_httpd::benign_world());
    assert!(!assert_elides("null_httpd/benign", &benign)
        .reason
        .is_detected());

    let m = Machine::from_c(ghttpd::SOURCE).unwrap();
    let attack = m.clone().world(ghttpd::attack_world(m.image()));
    assert!(assert_elides("ghttpd/attack", &attack).reason.is_detected());
    let benign = m.world(ghttpd::benign_world());
    assert!(!assert_elides("ghttpd/benign", &benign).reason.is_detected());

    // Traceroute double free, globd tilde expansion, dispatchd GOT-style
    // function-pointer overwrite.
    for (label, source, attack, benign) in [
        (
            "traceroute",
            traceroute::SOURCE,
            traceroute::attack_world(),
            traceroute::benign_world(),
        ),
        (
            "globd",
            globd::SOURCE,
            globd::attack_world(),
            globd::benign_world(),
        ),
        (
            "dispatchd",
            dispatchd::SOURCE,
            dispatchd::attack_world(),
            dispatchd::benign_world(),
        ),
    ] {
        let m = Machine::from_c(source).unwrap();
        let out = assert_elides(&format!("{label}/attack"), &m.clone().world(attack));
        assert!(out.reason.is_detected(), "{label}: attack went undetected");
        let out = assert_elides(&format!("{label}/benign"), &m.world(benign));
        assert!(!out.reason.is_detected(), "{label}: benign run alerted");
    }
}

#[test]
fn table4_scenarios_are_unchanged_by_elision() {
    for (label, source, world) in [
        (
            "int_overflow/attack",
            table4::INT_OVERFLOW_SOURCE,
            table4::int_overflow_attack_world(),
        ),
        (
            "auth_flag/attack",
            table4::AUTH_FLAG_SOURCE,
            table4::auth_flag_attack_world(),
        ),
        (
            "fmt_leak/attack",
            table4::FMT_LEAK_SOURCE,
            table4::fmt_leak_attack_world(),
        ),
    ] {
        // Table 4 documents false negatives: the paired-run equality is the
        // whole claim (elision must not change the verdict either way).
        let m = Machine::from_c(source).unwrap().world(world);
        assert_elides(label, &m);
    }
}

#[test]
fn workloads_elide_and_stay_alert_free() {
    for w in workloads::all() {
        let m = Machine::from_c(w.source).unwrap().world(w.world(1));
        let out = assert_elides(w.name, &m);
        assert!(
            !out.reason.is_detected(),
            "{}: workload should be alert-free",
            w.name
        );
    }
}
