//! Keeps `docs/TUTORIAL.md` honest: the walkthrough's vault service,
//! benign session, attack, and annotation all behave as documented.

use ptaint::{AlertKind, DetectionPolicy, ExitReason, Machine, NetSession, WorldConfig};

const VAULT_C: &str = r#"
struct vault {
    char *master;
};

struct vault v;

void reply(int s, char *msg) { send(s, msg, strlen(msg)); }

int main() {
    char req[256];
    char *entry;
    char *scratch;
    int s; int c; int n;
    v.master = "hunter2";
    scratch = malloc(200);
    free(scratch);
    s = socket(); bind(s, 7000); listen(s);
    c = accept(s);
    while (1) {
        n = recv(c, req, 255, 0);
        if (n <= 0) break;
        req[n] = 0;
        if (strncmp(req, "STORE ", 6) == 0) {
            entry = malloc(24);
            strcpy(entry, req + 6);
            reply(c, "200 stored\r\n");
            free(entry);
        } else if (strncmp(req, "MASTER", 6) == 0) {
            reply(c, v.master);
            reply(c, "\r\n");
        } else {
            reply(c, "500 ?\r\n");
        }
    }
    close(c);
    return 0;
}
"#;

/// The tutorial's attack payload: 24 bytes fill the entry chunk's payload,
/// then prev_size, a forged even size, and the fd/bk links — all NUL-free
/// because `strcpy` is the copying primitive.
fn attack_payload() -> Vec<u8> {
    let mut p = b"STORE ".to_vec();
    p.extend_from_slice(&[b'A'; 24]); // entry payload (malloc(24) -> 24+8 chunk)
    p.extend_from_slice(b"...."); // prev_size (ignored)
    p.extend_from_slice(b"...."); // forged size 0x2e2e2e2e: even, large
    p.extend_from_slice(b"aaaa"); // fd
    p.extend_from_slice(b"bbbb"); // bk
    p
}

#[test]
fn benign_session_works_as_documented() {
    let out = Machine::from_c(VAULT_C)
        .unwrap()
        .world(WorldConfig::new().session(NetSession::new(vec![
            b"STORE hello".to_vec(),
            b"MASTER".to_vec(),
        ])))
        .run();
    assert_eq!(out.reason, ExitReason::Exited(0), "{:?}", out.reason);
    let t = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
    assert!(t.contains("200 stored"), "{t}");
    assert!(t.contains("hunter2"), "{t}");
}

#[test]
fn attack_detected_inside_free_as_documented() {
    let m = Machine::from_c(VAULT_C)
        .unwrap()
        .world(WorldConfig::new().session(NetSession::new(vec![attack_payload()])));
    let out = m.run();
    let alert = out.reason.alert().expect("detected");
    assert_eq!(alert.kind, AlertKind::DataPointer);
    // The pointer derives from the payload's "aaaa" fd link.
    assert_eq!(alert.pointer & 0xffff_ff00, 0x6161_6100);
    let unlink = m.image().symbol("__unlink").unwrap();
    assert!(
        (unlink..unlink + 0x100).contains(&alert.pc),
        "{:#x}",
        alert.pc
    );
}

#[test]
fn unprotected_attack_proceeds_or_crashes_undetected() {
    let out = Machine::from_c(VAULT_C)
        .unwrap()
        .world(WorldConfig::new().session(NetSession::new(vec![attack_payload()])))
        .policy(DetectionPolicy::Off)
        .run();
    assert!(!out.reason.is_detected(), "{:?}", out.reason);
}

#[test]
fn annotation_watches_the_vault_struct_as_documented() {
    let out = Machine::from_c(VAULT_C)
        .unwrap()
        .taint_watch_symbol("v", 4)
        .world(WorldConfig::new().session(NetSession::new(vec![attack_payload()])))
        .run();
    // The pointer-taintedness detector fires first (inside free), before
    // any write could reach the annotated struct — annotations are a
    // *fallback*, not a replacement.
    assert!(out.reason.is_detected(), "{:?}", out.reason);
}
