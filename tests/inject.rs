//! Fault-injection campaigns against real guest applications, and the
//! no-panic contract of the hardened run loop: whatever we throw at the
//! stack — corrupted shadow bits, degraded I/O, hostile byte streams —
//! every run must come back as a structured [`RunOutcome`].

use proptest::prelude::*;
use ptaint::{
    CampaignSpec, ExitReason, Fault, FaultKind, Machine, NetSession, OutcomeClass, ToJson,
    WorldConfig,
};
use ptaint_guest::apps::{dispatchd, ghttpd, globd, null_httpd, synthetic, traceroute, wu_ftpd};

/// The paper's headline attack under taint-bit decay (§6 threat model
/// stress): clearing shadow bits around the tainted `url` pointer defeats
/// detection, and the campaign must *say so*. A trial where the attack
/// runs to a clean exit is a missed detection, never silently "benign".
#[test]
fn ghttpd_attack_taint_clear_campaign_reports_missed_not_benign() {
    let m = Machine::from_c(ghttpd::SOURCE).unwrap();
    let world = ghttpd::attack_world(m.image());
    let m = m.world(world);
    let spec = CampaignSpec::new(0x9bad_5eed, 24).kinds(vec![FaultKind::TaintClear]);
    let report = m.run_campaign(&spec);

    assert!(report.baseline_detected, "{:?}", report.baseline_reason);
    assert_eq!(report.count(OutcomeClass::Benign), 0);
    for r in &report.records {
        if matches!(r.reason, ExitReason::Exited(_)) {
            assert_eq!(
                r.class,
                OutcomeClass::Missed,
                "trial {}: clean exit of a detected attack must be a miss",
                r.trial
            );
        }
    }
    assert!(
        report.count(OutcomeClass::Missed) >= 1,
        "no taint-clear trial defeated detection: {}",
        report.to_json()
    );
}

/// Same seed, same machine — byte-identical campaign report, on a real
/// network application (not just the unit-test toy programs).
#[test]
fn ghttpd_campaign_report_is_byte_identical_across_runs() {
    let m = Machine::from_c(ghttpd::SOURCE).unwrap();
    let world = ghttpd::attack_world(m.image());
    let m = m.world(world);
    let spec = CampaignSpec::new(7, 12);
    let a = m.run_campaign(&spec).to_json();
    let b = m.run_campaign(&spec).to_json();
    assert_eq!(a, b);
    // And a different seed explores a different fault set.
    let c = m.run_campaign(&CampaignSpec::new(8, 12)).to_json();
    assert_ne!(a, c);
}

/// A full-vocabulary campaign over the synthetic exp1 stack smash: every
/// trial lands in exactly one class, counts reconcile, and the detected
/// baseline means no trial may be classified benign.
#[test]
fn exp1_campaign_classes_partition_the_trials() {
    let m = Machine::from_c(synthetic::EXP1_SOURCE)
        .unwrap()
        .world(synthetic::exp1_attack_world());
    let spec = CampaignSpec::new(3, 32);
    let report = m.run_campaign(&spec);

    assert!(report.baseline_detected);
    assert_eq!(report.count(OutcomeClass::Benign), 0);
    let total: u64 = OutcomeClass::ALL.iter().map(|&c| report.count(c)).sum();
    assert_eq!(total, spec.trials);
    assert_eq!(report.records.len() as u64, spec.trials);
    // Detection survives at least some injections (the plan spreads faults
    // over the whole run, most of which land far from the attack window).
    assert!(
        report.count(OutcomeClass::Detected) >= 1,
        "{}",
        report.to_json()
    );
}

/// On a benign workload nothing can be "missed": a taint-gain injection
/// either stays benign or surfaces as a false alert, and I/O degradation
/// may at worst crash the guest.
#[test]
fn benign_workload_campaign_never_reports_missed_or_detected() {
    let m = Machine::from_c(ghttpd::SOURCE)
        .unwrap()
        .world(ghttpd::benign_world());
    let report = m.run_campaign(&CampaignSpec::new(11, 16));
    assert!(!report.baseline_detected);
    assert_eq!(report.count(OutcomeClass::Missed), 0);
    assert_eq!(report.count(OutcomeClass::Detected), 0);
}

/// An injected ProvenClean-bitmap flip must never turn into a silent wrong
/// elision: the DMR replica compare (or the periodic integrity sweep)
/// catches it, the machine drops all proofs and continues in full-check
/// mode, and the attack is still detected — with the degradation visible
/// in `integrity_failures` and a reduced elision count.
#[test]
fn proven_flip_degrades_to_full_checks_and_still_detects() {
    let m = Machine::from_c(ghttpd::SOURCE).unwrap();
    let world = ghttpd::attack_world(m.image());
    let m = m.world(world).elide_checks(true);

    let clean = m.run();
    assert!(clean.reason.is_detected(), "{:?}", clean.reason);
    assert!(clean.stats.elided_checks > 0);
    assert_eq!(clean.stats.integrity_failures, 0);

    let fault = Fault {
        kind: FaultKind::ProvenFlip,
        io_call: 0,
        step: 500,
        salt: 0xdead_beef,
    };
    let trial = m.run_injected(&fault);
    assert!(
        trial.applied.is_some(),
        "the decode cache should be populated well before step 500"
    );
    assert!(
        trial.outcome.reason.is_detected(),
        "{:?}",
        trial.outcome.reason
    );
    assert!(trial.outcome.stats.integrity_failures >= 1);
    assert!(
        trial.outcome.stats.elided_checks < clean.stats.elided_checks,
        "degraded mode must stop eliding: {} vs clean {}",
        trial.outcome.stats.elided_checks,
        clean.stats.elided_checks
    );
}

/// The acceptance gate for graceful degradation: a campaign that corrupts
/// the elision machinery itself (ProvenClean flips and decode-slot upsets)
/// on the detected ghttpd attack reports **zero missed detections** — every
/// corruption either degrades to full checks (still detected) or crashes as
/// a detector fault, never a silent miss.
#[test]
fn detector_corruption_campaign_reports_zero_missed() {
    let m = Machine::from_c(ghttpd::SOURCE).unwrap();
    let world = ghttpd::attack_world(m.image());
    let m = m.world(world).elide_checks(true);
    let spec = CampaignSpec::new(0xd37e_c70f, 12)
        .kinds(vec![FaultKind::ProvenFlip, FaultKind::DecodeSlot]);
    let report = m.run_campaign(&spec);

    assert!(report.baseline_detected);
    assert_eq!(
        report.count(OutcomeClass::Missed),
        0,
        "a detector-corruption trial missed the attack: {}",
        report.to_json()
    );
    assert_eq!(report.count(OutcomeClass::Benign), 0);
    assert!(report.count(OutcomeClass::Detected) >= 1);
}

/// A ProofCache trial corrupts the on-disk `ptaint-proofs v1` entry before
/// boot; the entry's content checksum rejects it, and the boot falls back
/// to cold analysis — same verdict, fault accounted.
#[test]
fn proof_cache_corruption_falls_back_to_cold_analysis() {
    let dir = std::env::temp_dir().join(format!("ptaint-proofcache-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let m = Machine::from_c(synthetic::EXP1_SOURCE)
        .unwrap()
        .world(synthetic::exp1_attack_world())
        .elide_checks(true)
        .analysis_cache(&dir);

    // Warm the store (cold analysis writes the entry), pin the verdict.
    let clean = m.run();
    assert!(clean.reason.is_detected());

    let fault = Fault {
        kind: FaultKind::ProofCache,
        io_call: 0,
        step: 0,
        salt: 0x5eed,
    };
    let trial = m.run_injected(&fault);
    assert!(
        trial
            .applied
            .as_deref()
            .is_some_and(|d| d.contains("proofs entry bit")),
        "{:?}",
        trial.applied
    );
    assert_eq!(trial.outcome.reason, clean.reason);
    assert_eq!(trial.outcome.stats.injected_faults, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

fn fuzz_corpus() -> Vec<Machine> {
    vec![
        Machine::from_c(synthetic::EXP1_SOURCE).unwrap(),
        Machine::from_c(ghttpd::SOURCE).unwrap(),
        Machine::from_c(null_httpd::SOURCE).unwrap(),
        Machine::from_c(traceroute::SOURCE).unwrap(),
        Machine::from_c(wu_ftpd::SOURCE).unwrap(),
        Machine::from_c(globd::SOURCE).unwrap(),
        Machine::from_c(dispatchd::SOURCE).unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No guest application can panic the host, whatever bytes arrive on
    /// stdin and the network: every run terminates in a structured
    /// `ExitReason` within the step budget.
    #[test]
    fn no_guest_app_panics_on_arbitrary_input(
        stdin in proptest::collection::vec(any::<u8>(), 0..64),
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 0..4),
    ) {
        for m in fuzz_corpus() {
            let world = WorldConfig::new()
                .stdin(stdin.clone())
                .session(NetSession::new(msgs.clone()));
            let out = m.world(world).step_limit(2_000_000).run();
            // Any reason is acceptable — the contract is that we *got* one.
            prop_assert!(!format!("{}", out.reason).is_empty());
        }
    }

    /// The sharded-determinism contract on a real machine: for any seed,
    /// trial count, and worker count, `run_campaign_jobs` produces a report
    /// byte-identical to the single-threaded runner's.
    #[test]
    fn sharded_campaign_reports_are_byte_identical(
        seed in any::<u64>(),
        trials in 1u64..8,
        jobs in 2usize..6,
    ) {
        let m = Machine::from_c(synthetic::EXP1_SOURCE)
            .unwrap()
            .world(synthetic::exp1_attack_world())
            .step_limit(2_000_000);
        let spec = CampaignSpec::new(seed, trials);
        let seq = m.run_campaign_jobs(&spec, 1).to_json();
        let sharded = m.run_campaign_jobs(&spec, jobs).to_json();
        prop_assert_eq!(seq, sharded);
    }

    /// Arbitrary faults — any kind, any trigger point, any salt — injected
    /// into an attack run never panic and always classify.
    #[test]
    fn arbitrary_fault_injection_never_panics(
        kind_idx in 0usize..FaultKind::ALL.len(),
        step in 0u64..4000,
        io_call in 0u64..4,
        salt in any::<u64>(),
    ) {
        let m = Machine::from_c(synthetic::EXP1_SOURCE)
            .unwrap()
            .world(synthetic::exp1_attack_world())
            .step_limit(2_000_000);
        let fault = Fault {
            kind: FaultKind::ALL[kind_idx],
            io_call,
            step,
            salt,
        };
        let trial = m.run_injected(&fault);
        let class = ptaint::classify(&trial.outcome.reason, true);
        prop_assert!(OutcomeClass::ALL.contains(&class));
    }
}
