//! Golden-file tests for the static taint lint report.
//!
//! The rendered report for each pinned guest app is diffed byte-for-byte
//! against `tests/golden/analyze/<name>.txt`. The format is part of the
//! tool's contract (CI diffs it, humans read it); regenerate deliberately
//! with:
//!
//! ```sh
//! BLESS=1 cargo test --test analyze_golden
//! ```
//!
//! `BLESS=1` is the repo-wide regeneration knob (the trace-schema golden
//! uses the same one); the historical `UPDATE_GOLDEN=1` spelling keeps
//! working. See `tests/golden/analyze/README.md`.

use std::path::PathBuf;

use ptaint::{analyze, render_report};
use ptaint_guest::apps::{ghttpd, null_httpd, synthetic, wu_ftpd};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/analyze")
        .join(format!("{name}.txt"))
}

fn check(name: &str, source: &str) -> String {
    let image = ptaint_guest::build(source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let report = render_report(&image, &analyze(&image));
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() || std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &report).unwrap();
        return report;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{name}: missing golden {} ({e}); run with BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        report,
        want,
        "{name}: lint report drifted from {}; if intentional, regenerate with BLESS=1",
        path.display()
    );
    report
}

#[test]
fn exp1_report_matches_golden() {
    check("exp1", synthetic::EXP1_SOURCE);
}

/// A self-recursive guest that walks a tainted pointer down the recursion.
/// Pins the `(×N)` collapse of repeated reachability-chain frames — the
/// report must render `walk (×2)`, not `walk > walk`.
const RECURSION_SOURCE: &str = r#"
int walk(char *p, int n) {
    if (n == 0) return p[0];
    return walk(p, n - 1);
}
int main() {
    char buf[8];
    read(0, buf, 4);
    return walk((char *)(buf[0]), 3);
}
"#;

#[test]
fn recursion_report_matches_golden_and_collapses_chain_frames() {
    let report = check("recursion", RECURSION_SOURCE);
    assert!(
        report.contains("walk (\u{d7}2)"),
        "recursive chain frames must collapse to `walk (\u{d7}2)`:\n{report}"
    );
    assert!(
        !report.contains("walk > walk"),
        "uncollapsed recursive chain leaked into the report:\n{report}"
    );
}

#[test]
fn wu_ftpd_report_matches_golden() {
    check("wu_ftpd", wu_ftpd::SOURCE);
}

#[test]
fn null_httpd_report_matches_golden() {
    check("null_httpd", null_httpd::SOURCE);
}

#[test]
fn ghttpd_report_matches_golden_and_flags_the_tainted_deref() {
    let report = check("ghttpd", ghttpd::SOURCE);
    // The headline finding: ghttpd dereferences a pointer derived from
    // request bytes; the analyzer must call it out statically.
    assert!(
        report.contains("flagged sites (address register may be tainted):"),
        "ghttpd lint lost its tainted-pointer finding:\n{report}"
    );
    // ...and specifically on the request-handling path, not just deep in
    // libc: the overflow the paper detects flows through `handle`.
    assert!(
        report.contains("via _start > main > handle"),
        "ghttpd finding lost its request-path witness:\n{report}"
    );
}
