//! Root reproduction package. Integration tests live in `tests/`, runnable
//! examples in `examples/`. The public API is re-exported from the [`ptaint`]
//! crate.
pub use ptaint::*;
