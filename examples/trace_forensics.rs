//! The observability layer end to end: run the GHTTPD URL-pointer attack
//! (§5.1.2, a non-control-data exploit) with every trace sink enabled and
//! show what each one collected — the forensic provenance chain from the
//! tainting `recv` to the dereferenced pointer, the tail of the JSONL
//! event stream, and the run metrics.
//!
//! ```sh
//! cargo run --example trace_forensics
//! ```

use ptaint::{DetectionPolicy, Machine, TraceConfig};
use ptaint_guest::apps::ghttpd;

fn main() {
    let image = ptaint_guest::build(ghttpd::SOURCE).expect("builds");
    let machine = Machine::from_image(image.clone())
        .world(ghttpd::attack_world(&image))
        .policy(DetectionPolicy::PointerTaintedness);

    let (outcome, tail, report) = machine.run_with_trace(&TraceConfig::all());
    println!("== GHTTPD attack under full tracing ==");
    println!("outcome : {}\n", outcome.reason);

    println!("-- last instructions (diagnostic ring) --");
    for line in tail.iter().rev().take(5).rev() {
        println!("  {line}");
    }

    println!("\n-- forensic provenance chain --");
    match &report.forensic {
        Some(chain) => println!("{chain}"),
        None => println!("  (no chain: no alert fired)"),
    }

    println!("\n-- JSONL event stream (last 8 of the run) --");
    let jsonl = String::from_utf8(report.jsonl.unwrap_or_default()).unwrap_or_default();
    let lines: Vec<&str> = jsonl.lines().collect();
    for line in lines.iter().rev().take(8).rev() {
        println!("  {line}");
    }

    println!("\n-- metrics --");
    if let Some(m) = &report.metrics {
        println!(
            "  retired {} ({} tainted), {} sources / {} bytes, {} propagations,",
            m.retired, m.tainted_retired, m.taint_sources, m.source_bytes, m.propagations
        );
        println!(
            "  {} tainted pointer checks, {} alert(s)",
            m.pointer_checks, m.alerts
        );
        for (rule, n) in &m.propagations_by_rule {
            println!("    rule {rule:<18} {n}");
        }
    }
}
