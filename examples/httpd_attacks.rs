//! §5.1.2: the two web-server attacks and the traceroute double free —
//! all **non-control-data** exploits — under all three protection policies,
//! ending with the full coverage matrix.
//!
//! ```sh
//! cargo run --example httpd_attacks
//! ```

use ptaint::experiments::coverage;
use ptaint::DetectionPolicy;
use ptaint_guest::apps::{ghttpd, null_httpd, run_app, traceroute};

fn main() {
    // NULL HTTPD: negative Content-Length heap overflow retargets the
    // CGI-BIN configuration at "/bin".
    let image = ptaint_guest::build(null_httpd::SOURCE).expect("builds");
    println!("== NULL HTTPD heap corruption (negative Content-Length) ==");
    let out = run_app(
        &image,
        null_httpd::attack_world(&image),
        DetectionPolicy::Off,
    );
    let transcript = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
    println!("  unprotected : {}", out.reason);
    for line in transcript.lines().filter(|l| !l.trim().is_empty()) {
        println!("      server> {line}");
    }
    let out = run_app(
        &image,
        null_httpd::attack_world(&image),
        DetectionPolicy::PointerTaintedness,
    );
    println!("  protected   : {}", out.reason);

    // GHTTPD: stack overflow corrupts the already-validated URL pointer.
    let image = ptaint_guest::build(ghttpd::SOURCE).expect("builds");
    println!("\n== GHTTPD URL-pointer corruption (log buffer overflow) ==");
    let out = run_app(&image, ghttpd::attack_world(&image), DetectionPolicy::Off);
    let transcript = String::from_utf8_lossy(&out.transcripts[0]).into_owned();
    println!(
        "  unprotected : {} — server replied: {}",
        out.reason,
        transcript.trim()
    );
    let out = run_app(
        &image,
        ghttpd::attack_world(&image),
        DetectionPolicy::PointerTaintedness,
    );
    println!("  protected   : {}", out.reason);

    // Traceroute: double free walks argv bytes as chunk links.
    let image = ptaint_guest::build(traceroute::SOURCE).expect("builds");
    println!("\n== traceroute double free (-g x -g y) ==");
    let out = run_app(&image, traceroute::attack_world(), DetectionPolicy::Off);
    println!("  unprotected : {}", out.reason);
    let out = run_app(
        &image,
        traceroute::attack_world(),
        DetectionPolicy::PointerTaintedness,
    );
    println!("  protected   : {}", out.reason);

    // The full §5.1 matrix.
    println!("\n{}", coverage::run_coverage_matrix());
}
