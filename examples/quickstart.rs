//! Quickstart: compile a vulnerable C program, attack it, and watch the
//! pointer-taintedness detector stop the exploit.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ptaint::{cert, DetectionPolicy, Machine, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== ptaint quickstart ==\n");
    println!("{}", cert::render_figure_1());

    // The classic vulnerable function: unbounded input into a stack buffer.
    let machine = Machine::from_c(
        r#"
        void get_name() {
            char name[10];
            printf("name? ");
            scanf("%s", name);
            printf("hello, %s\n", name);
        }
        int main() { get_name(); return 0; }
        "#,
    )?;

    // A benign run behaves normally under full detection.
    let benign = machine
        .clone()
        .world(WorldConfig::new().stdin(b"alice".to_vec()))
        .policy(DetectionPolicy::PointerTaintedness)
        .run();
    println!("benign run : {}", benign.reason);
    println!("stdout     : {}", benign.stdout_text().trim());

    // The attack: 24 bytes overflow the buffer and overwrite the saved
    // return address with 0x61616161 ('aaaa').
    let attack_input = vec![b'a'; 24];

    // Unprotected, the process jumps into attacker-controlled bytes.
    let unprotected = machine
        .clone()
        .world(WorldConfig::new().stdin(attack_input.clone()))
        .policy(DetectionPolicy::Off)
        .run();
    println!("\nunprotected: {}", unprotected.reason);

    // With pointer-taintedness detection, the tainted return address is
    // caught at the `jr $31` — before any control-flow damage.
    let protected = machine
        .world(WorldConfig::new().stdin(attack_input))
        .policy(DetectionPolicy::PointerTaintedness)
        .run();
    let alert = protected.reason.alert().expect("attack detected");
    println!("protected  : SECURITY ALERT");
    println!("             {alert}");
    println!(
        "\nThe detector fired because the word loaded into the return-address\n\
         register came byte-for-byte from process input — a tainted pointer."
    );
    Ok(())
}
