//! Fork determinism on the trend gate's campaign: run the seed-7 GHTTPD
//! fault-injection campaign with trials forked copy-on-write from the
//! post-boot snapshot (the default) or rebooted from `_start`, and emit
//! the byte-deterministic campaign report JSON on stdout. The CI trend
//! gate runs both modes and `cmp`s the reports — the trial mechanism must
//! be invisible in the bytes.
//!
//! ```sh
//! cargo run --example fork_campaign -- forked   # campaign JSON, forked trials
//! cargo run --example fork_campaign -- reboot   # same campaign, rebooted trials
//! cargo run --example fork_campaign -- journal  # baseline run's syscall journal
//! ```
//!
//! `journal` records the unfaulted baseline run's syscall journal
//! (`ptaint-journal v1` text) for `ptaint-run replay`; CI uploads it as an
//! artifact so any gated campaign baseline can be retraced offline.

use ptaint::{CampaignSpec, DetectionPolicy, Machine, ToJson};
use ptaint_guest::apps::ghttpd;

/// The trend gate's campaign: seed 7, 12 faulted trials (see TREND.json).
const SEED: u64 = 7;
const TRIALS: u64 = 12;

fn main() {
    let image = ptaint_guest::build(ghttpd::SOURCE).expect("builds");
    let machine = Machine::from_image(image.clone())
        .world(ghttpd::attack_world(&image))
        .policy(DetectionPolicy::PointerTaintedness);

    match std::env::args().nth(1).as_deref() {
        Some("forked") | None => {
            let report = machine.run_campaign(&CampaignSpec::new(SEED, TRIALS));
            println!("{}", report.to_json());
        }
        Some("reboot") => {
            let report = machine
                .fork_trials(false)
                .run_campaign(&CampaignSpec::new(SEED, TRIALS));
            println!("{}", report.to_json());
        }
        Some("journal") => {
            let (outcome, journal) = machine.record();
            assert!(
                outcome.reason.is_detected(),
                "the pinned attack must be detected, got {:?}",
                outcome.reason
            );
            print!("{}", journal.to_text());
        }
        Some(other) => {
            eprintln!("fork_campaign: unknown mode `{other}` (forked | reboot | journal)");
            std::process::exit(2);
        }
    }
}
