//! The paper's §5.3 extension: annotate critical data that must never be
//! tainted, closing false negatives that pure pointer-taintedness
//! detection cannot see — at the cost of transparency.
//!
//! ```sh
//! cargo run --example annotations
//! ```

use ptaint::experiments::{ablation, annotations};

fn main() {
    // The extension: Table 4(B)'s auth-flag overwrite, undetectable by the
    // base architecture, is caught when the flag is annotated.
    println!("{}", annotations::run_annotation_experiment());

    // And the ablation study: what each Table 1 rule buys.
    println!("\n{}", ablation::run_ablation_study(2));
}
