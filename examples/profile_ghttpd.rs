//! The profiler on the GHTTPD URL-pointer attack (§5.1.2): run the pinned
//! attack session under the hot-loop profiler and emit the byte-
//! deterministic profile JSON on stdout — same build, same bytes. The CI
//! trend gate runs this twice and diffs the output.
//!
//! ```sh
//! cargo run --example profile_ghttpd            # profile JSON to stdout
//! cargo run --example profile_ghttpd -- report  # human top-N report
//! ```

use ptaint::{DetectionPolicy, Machine, ToJson, TraceConfig};
use ptaint_guest::apps::ghttpd;

fn main() {
    let image = ptaint_guest::build(ghttpd::SOURCE).expect("builds");
    let machine = Machine::from_image(image.clone())
        .world(ghttpd::attack_world(&image))
        .policy(DetectionPolicy::PointerTaintedness);

    let (outcome, _tail, _trace, profile) = machine.run_profile(&TraceConfig::default());
    assert!(
        outcome.reason.is_detected(),
        "the pinned attack must be detected, got {:?}",
        outcome.reason
    );
    if std::env::args().nth(1).as_deref() == Some("report") {
        print!("{}", profile.render_text(10));
    } else {
        println!("{}", profile.to_json());
    }
}
