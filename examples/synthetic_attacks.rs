//! Figure 2 / §5.1.1: the paper's three synthetic attacks — stack buffer
//! overflow, heap corruption, and format string — each detected by pointer
//! taintedness, plus the Figure 3 pipeline walk showing *where* in the
//! 5-stage pipeline each detector fires.
//!
//! ```sh
//! cargo run --example synthetic_attacks
//! ```

use ptaint::experiments::{figure3, synthetic, table1};

fn main() {
    println!("{}", table1::verify_propagation_rules());
    println!();
    println!("{}", synthetic::run_synthetic_suite());
    println!();
    println!("{}", figure3::run_pipeline_walk());
}
