//! Table 2 / §5.1.2: the WU-FTPD `SITE EXEC` format-string attack — a
//! **non-control-data** exploit that overwrites the server's user-ID word.
//!
//! This example shows the full story:
//!
//! 1. the attack session transcript with the detection alert (Table 2);
//! 2. the same attack against an *unprotected* machine, where it plants a
//!    root backdoor account in `/etc/passwd`;
//! 3. the same attack against a Minos-style control-data-only baseline,
//!    which never notices it.
//!
//! ```sh
//! cargo run --example ftp_attack
//! ```

use ptaint::experiments::table2;
use ptaint::{DetectionPolicy, HierarchyConfig};
use ptaint_guest::apps::{calibrate_format_pad, wu_ftpd};

fn main() {
    // 1. The protected run (Table 2).
    let report = table2::run_wu_ftpd_transcript();
    println!("{report}");

    // 2. Unprotected: the backdoor lands.
    let image = ptaint_guest::build(wu_ftpd::SOURCE).expect("builds");
    let target = wu_ftpd::uid_address(&image);
    let pad = calibrate_format_pad(&image, |p| wu_ftpd::attack_world(&image, p), target, 48)
        .expect("calibrates");
    let (mut cpu, mut os) = ptaint::load(
        &image,
        wu_ftpd::attack_world(&image, pad),
        DetectionPolicy::Off,
        HierarchyConfig::flat(),
    );
    let out = ptaint::run_to_exit(&mut cpu, &mut os, 200_000_000);
    println!("\n== the same attack, unprotected ==");
    println!("  outcome: {}", out.reason);
    if let Some(passwd) = os.file("/etc/passwd") {
        println!(
            "  /etc/passwd now contains: {}",
            String::from_utf8_lossy(passwd).trim()
        );
        println!("  (a root backdoor account — the paper's §5.1.2 compromise)");
    }

    // 3. Control-only baseline: blind to the attack.
    let (mut cpu, mut os) = ptaint::load(
        &image,
        wu_ftpd::attack_world(&image, pad),
        DetectionPolicy::ControlOnly,
        HierarchyConfig::flat(),
    );
    let out = ptaint::run_to_exit(&mut cpu, &mut os, 200_000_000);
    println!("\n== the same attack under control-data-only protection ==");
    println!(
        "  outcome: {} (no control data was corrupted, so nothing fired)",
        out.reason
    );
}
