//! Table 3's workloads, §5.4's overhead accounting, and the cache study —
//! the performance side of the evaluation in one tour.
//!
//! ```sh
//! cargo run --release --example workload_tour        # default scale 4
//! cargo run --release --example workload_tour -- 8   # bigger inputs
//! ```

use ptaint::experiments::{caches, optimizer, overhead, table3};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    println!("{}", table3::run_false_positive_suite(scale));
    println!();
    println!("{}", overhead::run_overhead_report(scale.min(4)));
    println!();
    println!("{}", caches::run_cache_study(scale.min(4)));
    println!();
    println!("{}", optimizer::run_optimizer_study(scale.min(4)));
}
